//! Array configuration.

use decluster_disk::{Geometry, MediaFaultConfig, SchedPolicy};
use serde::{Deserialize, Serialize};

/// Patrol-read scrubbing policy: a background process that cycles through
/// parity stripes verifying every unit, so latent sector errors are found
/// and repaired from redundancy *before* a disk failure exposes them.
///
/// The scrubber is throttled two ways so user response time degrades by a
/// bounded amount: at most [`ScrubConfig::max_outstanding`] verify cycles
/// are in flight at once, and when user requests are in flight a kick
/// backs off instead of claiming a stripe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScrubConfig {
    /// Master switch. Disabled (the default) costs nothing: runs are
    /// byte-identical with PR-2 behavior.
    pub enabled: bool,
    /// Microseconds between scrub kicks — the patrol rate ceiling (one
    /// stripe verify is started per kick at most).
    pub interval_us: u64,
    /// Maximum stripe-verify cycles in flight at once.
    pub max_outstanding: u32,
    /// Backoff, µs, when a kick finds user requests in flight: the
    /// scrubber yields the idle window it was hoping for.
    pub backoff_us: u64,
}

impl ScrubConfig {
    /// Scrubbing disabled (the default).
    pub fn off() -> ScrubConfig {
        ScrubConfig {
            enabled: false,
            interval_us: 2_000,
            max_outstanding: 1,
            backoff_us: 2_000,
        }
    }

    /// Scrubbing enabled at the default patrol rate (one stripe per 2 ms,
    /// one cycle in flight, 2 ms idle-wait backoff).
    pub fn on() -> ScrubConfig {
        ScrubConfig {
            enabled: true,
            ..ScrubConfig::off()
        }
    }

    /// Returns a copy with the given kick interval.
    pub fn with_interval_us(mut self, us: u64) -> ScrubConfig {
        self.interval_us = us;
        self
    }

    /// Returns a copy with the given in-flight cycle cap.
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero (the cap would deadlock the scrubber).
    pub fn with_max_outstanding(mut self, max: u32) -> ScrubConfig {
        assert!(max > 0, "a zero cycle cap would stall the scrubber");
        self.max_outstanding = max;
        self
    }

    /// Returns a copy with the given user-traffic backoff.
    pub fn with_backoff_us(mut self, us: u64) -> ScrubConfig {
        self.backoff_us = us;
        self
    }
}

impl Default for ScrubConfig {
    fn default() -> Self {
        ScrubConfig::off()
    }
}

/// Physical and policy configuration of the simulated array, matching the
/// paper's Table 5-1 defaults.
///
/// # Examples
///
/// ```
/// use decluster_array::ArrayConfig;
///
/// let cfg = ArrayConfig::paper();
/// assert_eq!(cfg.unit_sectors, 8); // 4 KB stripe units of 512-byte sectors
/// assert_eq!(cfg.units_per_disk(), 79_716);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// Per-disk geometry (all disks identical).
    pub geometry: Geometry,
    /// Sectors per stripe unit (8 × 512 B = the paper's 4 KB unit).
    pub unit_sectors: u32,
    /// Head-scheduling policy for every disk.
    pub sched: SchedPolicy,
    /// Seed for the workload generator.
    pub seed: u64,
    /// Delay inserted between a reconstruction process's cycles
    /// (reconstruction throttling — the paper's future-work knob), in
    /// microseconds. Zero (the default) reconstructs as fast as possible.
    pub recon_throttle_us: u64,
    /// When true, disks strictly prioritize user accesses over
    /// reconstruction accesses (the paper's future-work "flexible
    /// prioritization scheme"); reconstruction only uses idle capacity.
    pub recon_priority: bool,
    /// Units per disk reserved as distributed spare space (0 = dedicated
    /// replacement disks, the paper's organization). With spares reserved,
    /// reconstruction may rebuild into them instead of a replacement.
    pub spare_units_per_disk: u64,
    /// Media error processes injected into every disk (latent sector
    /// errors, transient failures with retry/backoff). Inactive by
    /// default: fault-free runs pay zero overhead.
    pub media_faults: MediaFaultConfig,
    /// Patrol-read scrubbing policy. Off by default.
    pub scrub: ScrubConfig,
}

impl ArrayConfig {
    /// The paper's configuration: IBM 0661 disks, 4 KB units, CVSCAN.
    pub fn paper() -> ArrayConfig {
        ArrayConfig::builder().build()
    }

    /// A typed builder starting from the paper defaults.
    ///
    /// # Examples
    ///
    /// ```
    /// use decluster_array::ArrayConfig;
    ///
    /// let cfg = ArrayConfig::builder().cylinders(100).seed(7).build();
    /// assert_eq!(cfg.seed, 7);
    /// assert_eq!(cfg.units_per_disk(), 100 * 14 * 48 / 8);
    /// ```
    pub fn builder() -> ArrayConfigBuilder {
        ArrayConfigBuilder::default()
    }

    /// The paper's configuration on proportionally shrunken disks with
    /// `cylinders` cylinders — same seek envelope and per-track timing,
    /// smaller capacity — for experiments that must run a full
    /// reconstruction quickly. Reconstruction time scales approximately
    /// linearly with capacity.
    pub fn scaled(cylinders: u32) -> ArrayConfig {
        ArrayConfig::builder().cylinders(cylinders).build()
    }

    /// Stripe units each disk holds.
    pub fn units_per_disk(&self) -> u64 {
        self.geometry.total_sectors() / self.unit_sectors as u64
    }

    /// Bytes per stripe unit.
    pub fn unit_bytes(&self) -> u64 {
        self.unit_sectors as u64 * self.geometry.bytes_per_sector as u64
    }

    /// Units per disk available for data and parity (total minus the
    /// distributed-spare reservation).
    pub fn data_units_per_disk(&self) -> u64 {
        self.units_per_disk() - self.spare_units_per_disk
    }
}

impl Default for ArrayConfig {
    fn default() -> Self {
        ArrayConfig::paper()
    }
}

/// Typed builder for [`ArrayConfig`], starting from the paper's
/// Table 5-1 defaults (full-size IBM 0661 disks, 4 KB units, CVSCAN,
/// no throttle, no sparing, media faults and scrubbing off).
///
/// Fault *schedules* — [`crate::FaultPlan`] and [`crate::CrashPlan`] —
/// are injected into a built [`crate::ArraySim`] rather than carried in
/// the config: a config describes the array, a plan describes one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayConfigBuilder {
    cfg: ArrayConfig,
}

impl Default for ArrayConfigBuilder {
    fn default() -> Self {
        ArrayConfigBuilder {
            cfg: ArrayConfig {
                geometry: Geometry::ibm0661(),
                unit_sectors: 8,
                sched: SchedPolicy::cvscan(),
                seed: 0x1992,
                recon_throttle_us: 0,
                recon_priority: false,
                spare_units_per_disk: 0,
                media_faults: MediaFaultConfig::none(),
                scrub: ScrubConfig::off(),
            },
        }
    }
}

impl ArrayConfigBuilder {
    /// Shrinks every disk to `cylinders` cylinders (same seek envelope
    /// and per-track timing, smaller capacity) for experiments that
    /// must run a full reconstruction quickly.
    pub fn cylinders(mut self, cylinders: u32) -> ArrayConfigBuilder {
        self.cfg.geometry = Geometry::ibm0661_scaled(cylinders);
        self
    }

    /// Replaces the per-disk geometry wholesale.
    pub fn geometry(mut self, geometry: Geometry) -> ArrayConfigBuilder {
        self.cfg.geometry = geometry;
        self
    }

    /// Sets the head-scheduling policy for every disk.
    pub fn sched(mut self, sched: SchedPolicy) -> ArrayConfigBuilder {
        self.cfg.sched = sched;
        self
    }

    /// Sets the workload generator seed.
    pub fn seed(mut self, seed: u64) -> ArrayConfigBuilder {
        self.cfg.seed = seed;
        self
    }

    /// Inserts a delay between a reconstruction process's cycles.
    pub fn recon_throttle_us(mut self, us: u64) -> ArrayConfigBuilder {
        self.cfg.recon_throttle_us = us;
        self
    }

    /// Strictly prioritizes user accesses over reconstruction accesses.
    pub fn recon_priority(mut self, on: bool) -> ArrayConfigBuilder {
        self.cfg.recon_priority = on;
        self
    }

    /// Reserves `units` spare units per disk for distributed sparing.
    ///
    /// # Panics
    ///
    /// Panics if the reservation leaves no data capacity.
    pub fn distributed_spares(mut self, units: u64) -> ArrayConfigBuilder {
        assert!(
            units < self.cfg.units_per_disk(),
            "spare reservation {units} swallows the whole disk"
        );
        self.cfg.spare_units_per_disk = units;
        self
    }

    /// Injects the given media fault processes into every disk.
    pub fn media_faults(mut self, faults: MediaFaultConfig) -> ArrayConfigBuilder {
        self.cfg.media_faults = faults;
        self
    }

    /// Sets the patrol-read scrubbing policy.
    pub fn scrub(mut self, scrub: ScrubConfig) -> ArrayConfigBuilder {
        self.cfg.scrub = scrub;
        self
    }

    /// Finishes the builder.
    ///
    /// # Panics
    ///
    /// Panics if the distributed-spare reservation no longer fits the
    /// final geometry (e.g. `distributed_spares` before a shrinking
    /// `cylinders` call).
    pub fn build(self) -> ArrayConfig {
        assert!(
            self.cfg.spare_units_per_disk == 0
                || self.cfg.spare_units_per_disk < self.cfg.units_per_disk(),
            "spare reservation {} swallows the whole disk",
            self.cfg.spare_units_per_disk
        );
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_units() {
        let cfg = ArrayConfig::paper();
        // 949 × 14 × 48 sectors / 8 per unit.
        assert_eq!(cfg.units_per_disk(), 79_716);
        assert_eq!(cfg.unit_bytes(), 4096);
    }

    #[test]
    fn scaled_keeps_unit_size() {
        let cfg = ArrayConfig::scaled(100);
        assert_eq!(cfg.unit_bytes(), 4096);
        assert_eq!(cfg.units_per_disk(), 100 * 14 * 48 / 8);
    }

    #[test]
    fn builder_sets_every_knob() {
        let cfg = ArrayConfig::builder()
            .seed(7)
            .recon_throttle_us(500)
            .recon_priority(true)
            .distributed_spares(1000)
            .media_faults(MediaFaultConfig::none().with_latent_rate(1e-6))
            .build();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.recon_throttle_us, 500);
        assert!(cfg.recon_priority);
        assert_eq!(cfg.data_units_per_disk(), cfg.units_per_disk() - 1000);
        assert!(cfg.media_faults.is_active());
        assert!(!ArrayConfig::paper().media_faults.is_active());
        assert_eq!(ArrayConfig::default(), ArrayConfig::paper());
    }

    #[test]
    fn builder_defaults_match_paper() {
        assert_eq!(ArrayConfig::builder().build(), ArrayConfig::paper());
        assert_eq!(
            ArrayConfig::builder().cylinders(100).build(),
            ArrayConfig::scaled(100)
        );
    }

    #[test]
    #[should_panic(expected = "swallows the whole disk")]
    fn oversized_spare_reservation_is_rejected() {
        let _ = ArrayConfig::builder()
            .cylinders(30)
            .distributed_spares(u64::MAX)
            .build();
    }

    #[test]
    fn scrub_builders() {
        assert_eq!(ScrubConfig::default(), ScrubConfig::off());
        assert!(!ArrayConfig::paper().scrub.enabled);
        let cfg = ArrayConfig::builder()
            .scrub(
                ScrubConfig::on()
                    .with_interval_us(500)
                    .with_max_outstanding(2)
                    .with_backoff_us(750),
            )
            .build();
        assert!(cfg.scrub.enabled);
        assert_eq!(cfg.scrub.interval_us, 500);
        assert_eq!(cfg.scrub.max_outstanding, 2);
        assert_eq!(cfg.scrub.backoff_us, 750);
    }

    #[test]
    #[should_panic(expected = "stall")]
    fn zero_outstanding_cap_is_rejected() {
        let _ = ScrubConfig::on().with_max_outstanding(0);
    }
}
