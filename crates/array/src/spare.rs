//! Distributed sparing: rebuild a failed disk into spare units spread
//! across the survivors instead of a dedicated replacement.
//!
//! The paper reconstructs onto a replacement disk, whose write stream is
//! the reconstruction's serial bottleneck once enough parallel processes
//! feed it. Distributed sparing — reserving a spare region on every disk
//! and rebuilding each lost unit into a spare slot on a surviving disk —
//! removes that bottleneck and is the design direction taken by later
//! declustered systems (e.g. ZFS dRAID). Implemented here as an extension
//! so the two repair organizations can be compared on the same simulator.
//!
//! A spare slot for a lost unit must avoid every disk that already holds a
//! unit of the same parity stripe, or a later failure of that disk would
//! take two units of one stripe (violating the single-failure-correcting
//! criterion). [`SpareMap::build`] honours that constraint while keeping
//! the spare load balanced across survivors.

use decluster_core::error::Error;
use decluster_core::layout::{ArrayMapping, UnitAddr};

/// The spare-slot assignment for one failed disk: where each lost unit is
/// rebuilt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpareMap {
    slots: Vec<Option<UnitAddr>>,
    spare_region_start: u64,
}

impl SpareMap {
    /// Assigns a spare slot to every mapped unit of `failed`.
    ///
    /// The data region covers offsets `0..mapping.units_per_disk()`; each
    /// disk additionally has `spare_units_per_disk` slots starting at the
    /// data region's end. Lost units are assigned to the least-loaded
    /// eligible survivor (a disk holding no unit of the same stripe), ties
    /// broken by disk index.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadParameters`] if the spare capacity cannot
    /// absorb the failed disk's contents under the placement constraint.
    pub fn build(
        mapping: &ArrayMapping,
        failed: u16,
        spare_units_per_disk: u64,
    ) -> Result<SpareMap, Error> {
        let c = mapping.disks();
        assert!(failed < c, "disk {failed} out of range");
        let data_units = mapping.units_per_disk();
        let mut used = vec![0u64; c as usize];
        let mut slots = Vec::with_capacity(data_units as usize);
        let mut in_stripe = vec![false; c as usize];
        for offset in 0..data_units {
            let Some(stripe) = mapping.role_at(failed, offset).stripe() else {
                slots.push(None);
                continue;
            };
            in_stripe.iter_mut().for_each(|b| *b = false);
            for u in mapping.stripe_units(stripe) {
                in_stripe[u.disk as usize] = true;
            }
            // Least-loaded eligible survivor; scan order gives stable ties.
            let mut best: Option<u16> = None;
            for d in 0..c {
                if d == failed || in_stripe[d as usize] || used[d as usize] >= spare_units_per_disk
                {
                    continue;
                }
                if best.is_none_or(|b| used[d as usize] < used[b as usize]) {
                    best = Some(d);
                }
            }
            let Some(disk) = best else {
                return Err(Error::BadParameters {
                    reason: format!(
                        "spare capacity exhausted at offset {offset}: \
                         {spare_units_per_disk} spare units per disk cannot absorb disk {failed}"
                    ),
                });
            };
            slots.push(Some(UnitAddr::new(disk, data_units + used[disk as usize])));
            used[disk as usize] += 1;
        }
        Ok(SpareMap {
            slots,
            spare_region_start: data_units,
        })
    }

    /// The spare slot for the lost unit at `offset` of the failed disk, or
    /// `None` if that offset was an unmapped hole.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is beyond the data region.
    pub fn spare_of(&self, offset: u64) -> Option<UnitAddr> {
        self.slots[offset as usize]
    }

    /// First offset of the spare region on every disk.
    pub fn spare_region_start(&self) -> u64 {
        self.spare_region_start
    }

    /// Number of lost units with assigned spares.
    pub fn assigned(&self) -> u64 {
        self.slots.iter().filter(|s| s.is_some()).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decluster_core::design::BlockDesign;
    use decluster_core::layout::{DeclusteredLayout, ParityLayout};
    use std::sync::Arc;

    fn mapping(g: u16, units: u64) -> ArrayMapping {
        let layout: Arc<dyn ParityLayout> =
            Arc::new(DeclusteredLayout::new(BlockDesign::complete(6, g).unwrap()).unwrap());
        ArrayMapping::new(layout, units).unwrap()
    }

    #[test]
    fn every_mapped_unit_gets_a_spare() {
        let m = mapping(4, 160);
        let spares = SpareMap::build(&m, 2, 40).unwrap();
        let mapped = (0..160)
            .filter(|&o| m.role_at(2, o).stripe().is_some())
            .count() as u64;
        assert_eq!(spares.assigned(), mapped);
    }

    #[test]
    fn spares_avoid_stripe_members_and_failed_disk() {
        let m = mapping(4, 160);
        let failed = 1u16;
        let spares = SpareMap::build(&m, failed, 40).unwrap();
        for offset in 0..160u64 {
            let Some(stripe) = m.role_at(failed, offset).stripe() else {
                continue;
            };
            let spare = spares.spare_of(offset).expect("mapped unit has a spare");
            assert_ne!(spare.disk, failed);
            assert!(
                m.stripe_units(stripe).iter().all(|u| u.disk != spare.disk),
                "offset {offset}: spare on a stripe member"
            );
            assert!(spare.offset >= spares.spare_region_start());
        }
    }

    #[test]
    fn spare_slots_are_unique() {
        let m = mapping(4, 160);
        let spares = SpareMap::build(&m, 0, 40).unwrap();
        let mut seen = std::collections::HashSet::new();
        for offset in 0..160u64 {
            if let Some(s) = spares.spare_of(offset) {
                assert!(seen.insert(s), "spare slot {s} assigned twice");
            }
        }
    }

    #[test]
    fn load_is_balanced_across_survivors() {
        let m = mapping(4, 160);
        let spares = SpareMap::build(&m, 3, 40).unwrap();
        let mut counts = vec![0u64; 6];
        for offset in 0..160u64 {
            if let Some(s) = spares.spare_of(offset) {
                counts[s.disk as usize] += 1;
            }
        }
        assert_eq!(counts[3], 0);
        let (min, max) = counts
            .iter()
            .enumerate()
            .filter(|&(d, _)| d != 3)
            .map(|(_, &c)| c)
            .fold((u64::MAX, 0), |(lo, hi), c| (lo.min(c), hi.max(c)));
        assert!(max - min <= 2, "unbalanced spares: {counts:?}");
    }

    #[test]
    fn insufficient_capacity_is_rejected() {
        let m = mapping(4, 160);
        // ~160 lost units over 5 survivors needs ≥ 32 each; 8 is hopeless.
        assert!(matches!(
            SpareMap::build(&m, 0, 8),
            Err(Error::BadParameters { .. })
        ));
    }

    #[test]
    fn error_message_names_the_exhausted_offset_and_disk() {
        let m = mapping(4, 160);
        let err = SpareMap::build(&m, 2, 8).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("spare capacity exhausted"), "{msg}");
        assert!(msg.contains("disk 2"), "{msg}");
    }

    #[test]
    fn unsatisfiable_placement_on_full_width_stripes_is_rejected() {
        // In a complete (4, 4) design every stripe spans every disk, so no
        // survivor is ever eligible: placement must fail no matter how
        // much spare capacity is reserved.
        let layout: Arc<dyn ParityLayout> =
            Arc::new(DeclusteredLayout::new(BlockDesign::complete(4, 4).unwrap()).unwrap());
        let m = ArrayMapping::new(layout, 120).unwrap();
        assert!(matches!(
            SpareMap::build(&m, 0, 1_000_000),
            Err(Error::BadParameters { .. })
        ));
    }

    #[test]
    fn zero_reservation_is_rejected_for_any_mapped_disk() {
        let m = mapping(4, 160);
        for failed in 0..6u16 {
            assert!(
                SpareMap::build(&m, failed, 0).is_err(),
                "disk {failed}: zero spare units cannot absorb anything"
            );
        }
    }

    #[test]
    fn follow_on_failure_never_takes_two_units_of_one_stripe() {
        // Regression for the single-failure-correcting criterion: after
        // rebuilding disk 0 into spares, a failure of ANY surviving disk
        // must cost each stripe at most one unit (home units + relocated
        // spare units combined).
        let m = mapping(4, 160);
        let failed = 0u16;
        let spares = SpareMap::build(&m, failed, 40).unwrap();
        for second in 1..6u16 {
            for stripe in 0..m.stripes() {
                if !m.is_mapped(stripe) {
                    continue;
                }
                let mut hit = 0;
                for u in m.stripe_units(stripe) {
                    if u.disk == second {
                        hit += 1; // a home unit of the second disk
                    } else if u.disk == failed
                        && spares.spare_of(u.offset).expect("mapped").disk == second
                    {
                        hit += 1; // a relocated unit now living on it
                    }
                }
                assert!(
                    hit <= 1,
                    "stripe {stripe}: disk {second} holds {hit} units after sparing"
                );
            }
        }
    }
}
