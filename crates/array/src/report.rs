//! Result types returned by array simulations.

use decluster_sim::{OnlineStats, ResponseStats, SimTime};
use serde::{Deserialize, Serialize};

/// Why a stripe lost data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossCause {
    /// A second whole-disk failure made two of the stripe's units
    /// unavailable.
    SecondDiskFailure,
    /// An unreadable sector was discovered while the stripe was already
    /// missing a unit (degraded or not yet rebuilt).
    MediaError {
        /// The disk whose sector was unreadable.
        disk: u16,
    },
}

/// One parity stripe that lost data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LostStripe {
    /// The stripe's id in the array mapping.
    pub stripe: u64,
    /// Unavailable data units in the stripe.
    pub data_units: u16,
    /// Unavailable parity units in the stripe (0 or 1).
    pub parity_units: u16,
    /// What made the stripe unrecoverable.
    pub cause: LossCause,
}

/// Accounting of data lost to faults beyond the array's single-failure
/// tolerance: which stripes became unrecoverable, split into data and
/// parity units, plus how far reconstruction had progressed when the
/// fatal fault landed.
///
/// An empty report (the [`Default`]) means the run lost nothing.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DataLossReport {
    /// Every stripe that lost data, in stripe-id order for whole-disk
    /// failures, discovery order for media errors.
    pub stripes: Vec<LostStripe>,
    /// The second whole-disk failure that ended the run, if one fired:
    /// `(disk, time)`.
    pub second_failure: Option<(u16, SimTime)>,
    /// Reconstruction progress when the second failure landed:
    /// `(units rebuilt, units total)`. `None` when no rebuild was active.
    pub rebuilt_before_loss: Option<(u64, u64)>,
}

impl DataLossReport {
    /// Whether the run lost any data.
    pub fn is_empty(&self) -> bool {
        self.stripes.is_empty()
    }

    /// Unavailable data units summed over all lost stripes.
    pub fn lost_data_units(&self) -> u64 {
        self.stripes.iter().map(|s| s.data_units as u64).sum()
    }

    /// Unavailable parity units summed over all lost stripes.
    pub fn lost_parity_units(&self) -> u64 {
        self.stripes.iter().map(|s| s.parity_units as u64).sum()
    }

    /// Fraction of the dead disk rebuilt before the loss event, if a
    /// rebuild was running.
    pub fn rebuilt_fraction_before_loss(&self) -> Option<f64> {
        self.rebuilt_before_loss
            .map(|(done, total)| if total == 0 { 1.0 } else { done as f64 / total as f64 })
    }
}

/// Results of a steady-state run (fault-free or degraded mode).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Response times of user reads completed in the measurement window.
    pub reads: ResponseStats,
    /// Response times of user writes completed in the measurement window.
    pub writes: ResponseStats,
    /// All user responses combined.
    pub all: ResponseStats,
    /// Simulated time covered by the run.
    pub elapsed: SimTime,
    /// User requests issued (including warmup).
    pub requests_issued: u64,
    /// User requests completed inside the measurement window.
    pub requests_measured: u64,
    /// Mean utilization across all (healthy) disks over the whole run.
    pub mean_disk_utilization: f64,
    /// Utilization of each disk over the whole run (a failed disk reads
    /// as ~0). Exposes the load imbalance that layout criterion 2 exists
    /// to prevent.
    pub per_disk_utilization: Vec<f64>,
    /// Simulation events processed by the event loop — the denominator for
    /// simulator throughput (events per wall-clock second) in benchmarks.
    pub events_processed: u64,
    /// Stripes that lost data (second failure, media errors). Empty on a
    /// clean run; a terminal second failure also truncates `elapsed`.
    pub data_loss: DataLossReport,
}

/// Per-phase timing of reconstruction cycles (the paper's Table 8-1 rows).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CycleStats {
    /// Read-phase duration (collect + XOR the surviving units), ms.
    pub read_ms: OnlineStats,
    /// Write-phase duration (store the rebuilt unit), ms.
    pub write_ms: OnlineStats,
}

impl CycleStats {
    /// Mean full-cycle time, ms.
    pub fn cycle_ms(&self) -> f64 {
        self.read_ms.mean() + self.write_ms.mean()
    }
}

/// Results of a reconstruction run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReconReport {
    /// Wall-clock reconstruction time, or `None` if the run hit its limit
    /// before the replacement was fully rebuilt.
    pub reconstruction_time: Option<SimTime>,
    /// User response times during reconstruction.
    pub user: ResponseStats,
    /// User reads during reconstruction.
    pub reads: ResponseStats,
    /// User writes during reconstruction.
    pub writes: ResponseStats,
    /// Cycle statistics over the whole reconstruction.
    pub cycles: CycleStats,
    /// Cycle statistics over only the final cycles (the paper's Table 8-1
    /// averages the last 300 stripe units).
    pub last_cycles: CycleStats,
    /// Units rebuilt by the background sweep.
    pub units_swept: u64,
    /// Units rebuilt as a side effect of user activity (direct writes,
    /// piggybacked reads).
    pub units_by_users: u64,
    /// Units whose stripe proved unrecoverable (a survivor's sector was
    /// unreadable): accounted as resolved so the sweep terminates, and
    /// recorded in [`ReconReport::data_loss`].
    pub units_lost: u64,
    /// Units on the replacement disk that needed rebuilding.
    pub units_total: u64,
    /// Mean utilization of surviving disks over the run.
    pub survivor_utilization: f64,
    /// Utilization of the replacement disk over the run.
    pub replacement_utilization: f64,
    /// Rebuild trajectory: `(seconds, fraction rebuilt)` sampled at each
    /// whole percent of progress. Shows, e.g., the acceleration from
    /// user-driven "free" rebuilding under the piggybacking algorithms.
    pub progress: Vec<(f64, f64)>,
    /// Simulation events processed by the event loop — the denominator for
    /// simulator throughput (events per wall-clock second) in benchmarks.
    pub events_processed: u64,
    /// Stripes that lost data (second failure, unreadable sectors during
    /// rebuild). Empty when reconstruction ran to completion unscathed.
    pub data_loss: DataLossReport,
}

impl ReconReport {
    /// Reconstruction time in seconds, if it completed.
    pub fn reconstruction_secs(&self) -> Option<f64> {
        self.reconstruction_time.map(|t| t.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_stats_sum() {
        let mut c = CycleStats::default();
        c.read_ms.push(88.0);
        c.write_ms.push(15.0);
        assert!((c.cycle_ms() - 103.0).abs() < 1e-12);
    }

    #[test]
    fn empty_loss_report_reads_as_clean() {
        let r = DataLossReport::default();
        assert!(r.is_empty());
        assert_eq!(r.lost_data_units(), 0);
        assert_eq!(r.lost_parity_units(), 0);
        assert_eq!(r.rebuilt_fraction_before_loss(), None);
    }

    #[test]
    fn loss_report_sums_units_and_fractions() {
        let r = DataLossReport {
            stripes: vec![
                LostStripe {
                    stripe: 3,
                    data_units: 2,
                    parity_units: 0,
                    cause: LossCause::SecondDiskFailure,
                },
                LostStripe {
                    stripe: 9,
                    data_units: 1,
                    parity_units: 1,
                    cause: LossCause::MediaError { disk: 4 },
                },
            ],
            second_failure: Some((4, SimTime::from_secs(10))),
            rebuilt_before_loss: Some((25, 100)),
        };
        assert!(!r.is_empty());
        assert_eq!(r.lost_data_units(), 3);
        assert_eq!(r.lost_parity_units(), 1);
        assert_eq!(r.rebuilt_fraction_before_loss(), Some(0.25));
    }

    #[test]
    fn recon_secs_is_none_until_complete() {
        let mut r = ReconReport::default();
        assert_eq!(r.reconstruction_secs(), None);
        r.reconstruction_time = Some(SimTime::from_secs(120));
        assert_eq!(r.reconstruction_secs(), Some(120.0));
    }
}
