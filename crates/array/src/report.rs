//! Result types returned by array simulations.

use decluster_sim::{LatencyHistogram, Observations, OnlineStats, ResponseStats, SimTime};
use serde::{Deserialize, Serialize};

/// User-visible response-time statistics, shared by [`RunReport`] and
/// [`ReconReport`].
///
/// Each op class keeps both the exact sample store ([`ResponseStats`],
/// for exact means and nearest-rank percentiles) and a fixed-bucket
/// log-scaled [`LatencyHistogram`] whose `merge` is exactly associative
/// — the parallel sweep runner combines per-shard histograms in
/// submission order and gets byte-identical reports at any thread
/// count.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OpStats {
    /// Response times of user reads completed in the measurement window.
    pub reads: ResponseStats,
    /// Response times of user writes completed in the measurement window.
    pub writes: ResponseStats,
    /// All user responses combined.
    pub all: ResponseStats,
    /// Log-scaled histogram of `reads`.
    pub read_hist: LatencyHistogram,
    /// Log-scaled histogram of `writes`.
    pub write_hist: LatencyHistogram,
    /// Log-scaled histogram of `all`.
    pub all_hist: LatencyHistogram,
}

impl OpStats {
    /// Records one completed user read.
    pub fn record_read(&mut self, response: SimTime) {
        self.reads.record(response);
        self.all.record(response);
        self.read_hist.record(response);
        self.all_hist.record(response);
    }

    /// Records one completed user write.
    pub fn record_write(&mut self, response: SimTime) {
        self.writes.record(response);
        self.all.record(response);
        self.write_hist.record(response);
        self.all_hist.record(response);
    }

    /// Exact median response time over all user requests, ms.
    pub fn p50_ms(&self) -> f64 {
        self.percentile_or_zero(0.5)
    }

    /// Exact 95th-percentile response time over all user requests, ms.
    pub fn p95_ms(&self) -> f64 {
        self.percentile_or_zero(0.95)
    }

    /// Exact 99th-percentile response time over all user requests, ms.
    pub fn p99_ms(&self) -> f64 {
        self.percentile_or_zero(0.99)
    }

    /// Exact maximum response time over all user requests, ms.
    pub fn max_ms(&self) -> f64 {
        self.all.max_ms()
    }

    fn percentile_or_zero(&self, q: f64) -> f64 {
        if self.all.count() == 0 {
            0.0
        } else {
            self.all.percentile_ms(q)
        }
    }

    /// Folds `other` into `self`. The histogram components merge
    /// exactly (integer counters), so shard order does not affect the
    /// merged histograms.
    pub fn merge(&mut self, other: &OpStats) {
        self.reads.merge(&other.reads);
        self.writes.merge(&other.writes);
        self.all.merge(&other.all);
        self.read_hist.merge(&other.read_hist);
        self.write_hist.merge(&other.write_hist);
        self.all_hist.merge(&other.all_hist);
    }
}

/// Why a stripe lost data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossCause {
    /// A second whole-disk failure made two of the stripe's units
    /// unavailable.
    SecondDiskFailure,
    /// An unreadable sector was discovered while the stripe was already
    /// missing a unit (degraded or not yet rebuilt).
    MediaError {
        /// The disk whose sector was unreadable.
        disk: u16,
    },
}

/// One parity stripe that lost data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LostStripe {
    /// The stripe's id in the array mapping.
    pub stripe: u64,
    /// Unavailable data units in the stripe.
    pub data_units: u16,
    /// Unavailable parity units in the stripe (0 or 1).
    pub parity_units: u16,
    /// What made the stripe unrecoverable.
    pub cause: LossCause,
}

/// Accounting of data lost to faults beyond the array's single-failure
/// tolerance: which stripes became unrecoverable, split into data and
/// parity units, plus how far reconstruction had progressed when the
/// fatal fault landed.
///
/// An empty report (the [`Default`]) means the run lost nothing.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DataLossReport {
    /// Every stripe that lost data, in stripe-id order for whole-disk
    /// failures, discovery order for media errors.
    pub stripes: Vec<LostStripe>,
    /// The second whole-disk failure that ended the run, if one fired:
    /// `(disk, time)`.
    pub second_failure: Option<(u16, SimTime)>,
    /// Reconstruction progress when the second failure landed:
    /// `(units rebuilt, units total)`. `None` when no rebuild was active.
    pub rebuilt_before_loss: Option<(u64, u64)>,
}

impl DataLossReport {
    /// Whether the run lost any data.
    pub fn is_empty(&self) -> bool {
        self.stripes.is_empty()
    }

    /// Unavailable data units summed over all lost stripes.
    pub fn lost_data_units(&self) -> u64 {
        self.stripes.iter().map(|s| s.data_units as u64).sum()
    }

    /// Unavailable parity units summed over all lost stripes.
    pub fn lost_parity_units(&self) -> u64 {
        self.stripes.iter().map(|s| s.parity_units as u64).sum()
    }

    /// Fraction of the dead disk rebuilt before the loss event, if a
    /// rebuild was running.
    pub fn rebuilt_fraction_before_loss(&self) -> Option<f64> {
        self.rebuilt_before_loss.map(|(done, total)| {
            if total == 0 {
                1.0
            } else {
                done as f64 / total as f64
            }
        })
    }
}

/// What the patrol-read scrubber did over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrubReport {
    /// Stripe verify cycles completed (a stripe re-verified on a later
    /// pass counts again).
    pub stripes_scanned: u64,
    /// Verify reads issued by scrub cycles.
    pub units_read: u64,
    /// Latent sector errors the patrol discovered.
    pub errors_found: u64,
    /// Discovered errors repaired from redundancy (rewritten). Errors on
    /// stripes already missing a unit are unrepairable and are recorded
    /// in the run's [`DataLossReport`] instead.
    pub errors_repaired: u64,
    /// Kicks that found user requests in flight and yielded instead of
    /// claiming a stripe — the throttle at work.
    pub backoffs: u64,
    /// Completed full passes over the stripe space.
    pub passes: u64,
}

/// The state a power loss left the array in: which parity updates were
/// torn mid-flight and which stripes the dirty-region log would have
/// listed. Produced when a [`crate::CrashPlan`] fires; consumed by
/// [`crate::recovery::recover`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CrashReport {
    /// When the power cut landed.
    pub at: SimTime,
    /// Stripes with a write phase *partially* applied at the cut — some
    /// of the phase's writes had landed, some had not, so the stripe's
    /// parity no longer matches its data (the RAID-5 write hole).
    /// Sorted, deduplicated; always a subset of `dirty_stripes`.
    pub torn_stripes: Vec<u64>,
    /// Stripes any in-flight operation was going to write — what a
    /// dirty-region log flushed before issuing data writes would hold.
    /// Sorted, deduplicated.
    pub dirty_stripes: Vec<u64>,
    /// The failed disk at crash time, if the array was degraded or
    /// rebuilding: recovery must not try to read or rewrite its units.
    pub failed_disk: Option<u16>,
}

impl CrashReport {
    /// Whether the crash left any stripe inconsistent.
    pub fn is_clean(&self) -> bool {
        self.torn_stripes.is_empty()
    }
}

/// How restart recovery decides which stripes to verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// Verify every mapped stripe — correct with no logging at all, but
    /// the whole array must be read.
    FullResync,
    /// Verify only the stripes the dirty-region log named (writes in
    /// flight at the crash) — the same repairs at a fraction of the
    /// reads.
    DirtyRegionLog,
}

impl RecoveryPolicy {
    /// Stable lower-case name (JSON keys, CLI flags).
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryPolicy::FullResync => "full-resync",
            RecoveryPolicy::DirtyRegionLog => "dirty-region-log",
        }
    }
}

/// Exact accounting of one restart recovery: what was scanned, what was
/// torn, what was repaired, and how long the pass took on the simulated
/// disks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsistencyReport {
    /// The policy that ran.
    pub policy: RecoveryPolicy,
    /// Stripes read and verified.
    pub stripes_checked: u64,
    /// Torn stripes the scan encountered.
    pub torn_found: u64,
    /// Torn stripes repaired (parity rewritten from the surviving data,
    /// or moot because the parity unit sat on the failed disk).
    pub torn_repaired: u64,
    /// Stripe units read by the scan.
    pub resync_units_read: u64,
    /// Stripe units written by repairs.
    pub resync_units_written: u64,
    /// Wall time of the recovery pass, seconds: per-disk sequential
    /// pipelines running in parallel, so the slowest disk sets the time.
    pub recovery_secs: f64,
}

/// Results of a steady-state run (fault-free or degraded mode).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// User response-time statistics (reads, writes, combined), with
    /// log-scaled latency histograms.
    pub ops: OpStats,
    /// Simulated time covered by the run.
    pub elapsed: SimTime,
    /// User requests issued (including warmup).
    pub requests_issued: u64,
    /// User requests completed inside the measurement window.
    pub requests_measured: u64,
    /// Mean utilization across all (healthy) disks over the whole run.
    pub mean_disk_utilization: f64,
    /// Utilization of each disk over the whole run (a failed disk reads
    /// as ~0). Exposes the load imbalance that layout criterion 2 exists
    /// to prevent.
    pub per_disk_utilization: Vec<f64>,
    /// Simulation events processed by the event loop — the denominator for
    /// simulator throughput (events per wall-clock second) in benchmarks.
    pub events_processed: u64,
    /// Stripes that lost data (second failure, media errors). Empty on a
    /// clean run; a terminal second failure also truncates `elapsed`.
    pub data_loss: DataLossReport,
    /// Patrol-read scrubbing statistics, when the scrubber was enabled.
    pub scrub: Option<ScrubReport>,
    /// The write-hole state a [`crate::CrashPlan`] left behind, when one
    /// fired (the crash also truncates `elapsed`).
    pub crash: Option<CrashReport>,
    /// Unhealed latent defects on surviving disks' mapped sectors at the
    /// end of the run, when media faults were active. With a terminal
    /// second failure this is the exposure *at second-fault time* — the
    /// count scrubbing exists to shrink.
    pub exposed_defects: Option<u64>,
    /// Everything an active [`decluster_sim::Probe`] recorded: per-class
    /// histograms, per-disk timelines, the optional trace. `None` under
    /// the default [`decluster_sim::NoProbe`].
    pub observations: Option<Observations>,
}

/// Per-phase timing of reconstruction cycles (the paper's Table 8-1 rows).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CycleStats {
    /// Read-phase duration (collect + XOR the surviving units), ms.
    pub read_ms: OnlineStats,
    /// Write-phase duration (store the rebuilt unit), ms.
    pub write_ms: OnlineStats,
}

impl CycleStats {
    /// Mean full-cycle time, ms.
    pub fn cycle_ms(&self) -> f64 {
        self.read_ms.mean() + self.write_ms.mean()
    }
}

/// Results of a reconstruction run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReconReport {
    /// Wall-clock reconstruction time, or `None` if the run hit its limit
    /// before the replacement was fully rebuilt.
    pub reconstruction_time: Option<SimTime>,
    /// User response-time statistics during reconstruction (`ops.all`
    /// is the paper's "user response time"), with latency histograms.
    pub ops: OpStats,
    /// Cycle statistics over the whole reconstruction.
    pub cycles: CycleStats,
    /// Cycle statistics over only the final cycles (the paper's Table 8-1
    /// averages the last 300 stripe units).
    pub last_cycles: CycleStats,
    /// Units rebuilt by the background sweep.
    pub units_swept: u64,
    /// Units rebuilt as a side effect of user activity (direct writes,
    /// piggybacked reads).
    pub units_by_users: u64,
    /// Units whose stripe proved unrecoverable (a survivor's sector was
    /// unreadable): accounted as resolved so the sweep terminates, and
    /// recorded in [`ReconReport::data_loss`].
    pub units_lost: u64,
    /// Units on the replacement disk that needed rebuilding.
    pub units_total: u64,
    /// Mean utilization of surviving disks over the run.
    pub survivor_utilization: f64,
    /// Utilization of the replacement disk over the run.
    pub replacement_utilization: f64,
    /// Rebuild trajectory: `(seconds, fraction rebuilt)` sampled at each
    /// whole percent of progress. Shows, e.g., the acceleration from
    /// user-driven "free" rebuilding under the piggybacking algorithms.
    pub progress: Vec<(f64, f64)>,
    /// Simulation events processed by the event loop — the denominator for
    /// simulator throughput (events per wall-clock second) in benchmarks.
    pub events_processed: u64,
    /// Stripes that lost data (second failure, unreadable sectors during
    /// rebuild). Empty when reconstruction ran to completion unscathed.
    pub data_loss: DataLossReport,
    /// Patrol-read scrubbing statistics, when the scrubber was enabled.
    pub scrub: Option<ScrubReport>,
    /// The write-hole state a [`crate::CrashPlan`] left behind, when one
    /// fired mid-rebuild (the crash ends the run).
    pub crash: Option<CrashReport>,
    /// Unhealed latent defects on surviving disks' mapped sectors at the
    /// end of the run, when media faults were active. With a terminal
    /// second failure this is the exposure *at second-fault time*.
    pub exposed_defects: Option<u64>,
    /// Everything an active [`decluster_sim::Probe`] recorded: per-class
    /// histograms, per-disk timelines, the optional trace. `None` under
    /// the default [`decluster_sim::NoProbe`].
    pub observations: Option<Observations>,
}

impl ReconReport {
    /// Reconstruction time in seconds, if it completed.
    pub fn reconstruction_secs(&self) -> Option<f64> {
        self.reconstruction_time.map(|t| t.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_stats_records_into_class_and_combined() {
        let mut s = OpStats::default();
        s.record_read(SimTime::from_ms(10));
        s.record_write(SimTime::from_ms(30));
        assert_eq!(s.reads.count(), 1);
        assert_eq!(s.writes.count(), 1);
        assert_eq!(s.all.count(), 2);
        assert_eq!(s.read_hist.count(), 1);
        assert_eq!(s.all_hist.count(), 2);
        assert_eq!(s.max_ms(), 30.0);
        assert_eq!(s.p50_ms(), 10.0);
        assert_eq!(s.p99_ms(), 30.0);
    }

    #[test]
    fn empty_op_stats_percentiles_are_zero() {
        let s = OpStats::default();
        assert_eq!(s.p50_ms(), 0.0);
        assert_eq!(s.p95_ms(), 0.0);
        assert_eq!(s.p99_ms(), 0.0);
        assert_eq!(s.max_ms(), 0.0);
    }

    #[test]
    fn op_stats_merge_matches_sequential_recording() {
        let mut merged = OpStats::default();
        let mut sequential = OpStats::default();
        let mut shard = OpStats::default();
        for i in 1..=10u64 {
            let t = SimTime::from_ms(i);
            sequential.record_read(t);
            if i <= 5 {
                merged.record_read(t);
            } else {
                shard.record_read(t);
            }
        }
        merged.merge(&shard);
        assert_eq!(merged.all.count(), sequential.all.count());
        assert_eq!(merged.all_hist, sequential.all_hist);
        assert_eq!(merged.p95_ms(), sequential.p95_ms());
    }

    #[test]
    fn cycle_stats_sum() {
        let mut c = CycleStats::default();
        c.read_ms.push(88.0);
        c.write_ms.push(15.0);
        assert!((c.cycle_ms() - 103.0).abs() < 1e-12);
    }

    #[test]
    fn empty_loss_report_reads_as_clean() {
        let r = DataLossReport::default();
        assert!(r.is_empty());
        assert_eq!(r.lost_data_units(), 0);
        assert_eq!(r.lost_parity_units(), 0);
        assert_eq!(r.rebuilt_fraction_before_loss(), None);
    }

    #[test]
    fn loss_report_sums_units_and_fractions() {
        let r = DataLossReport {
            stripes: vec![
                LostStripe {
                    stripe: 3,
                    data_units: 2,
                    parity_units: 0,
                    cause: LossCause::SecondDiskFailure,
                },
                LostStripe {
                    stripe: 9,
                    data_units: 1,
                    parity_units: 1,
                    cause: LossCause::MediaError { disk: 4 },
                },
            ],
            second_failure: Some((4, SimTime::from_secs(10))),
            rebuilt_before_loss: Some((25, 100)),
        };
        assert!(!r.is_empty());
        assert_eq!(r.lost_data_units(), 3);
        assert_eq!(r.lost_parity_units(), 1);
        assert_eq!(r.rebuilt_fraction_before_loss(), Some(0.25));
    }

    #[test]
    fn recon_secs_is_none_until_complete() {
        let mut r = ReconReport::default();
        assert_eq!(r.reconstruction_secs(), None);
        r.reconstruction_time = Some(SimTime::from_secs(120));
        assert_eq!(r.reconstruction_secs(), Some(120.0));
    }
}
