//! Result types returned by array simulations.

use decluster_sim::{OnlineStats, ResponseStats, SimTime};
use serde::{Deserialize, Serialize};

/// Results of a steady-state run (fault-free or degraded mode).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Response times of user reads completed in the measurement window.
    pub reads: ResponseStats,
    /// Response times of user writes completed in the measurement window.
    pub writes: ResponseStats,
    /// All user responses combined.
    pub all: ResponseStats,
    /// Simulated time covered by the run.
    pub elapsed: SimTime,
    /// User requests issued (including warmup).
    pub requests_issued: u64,
    /// User requests completed inside the measurement window.
    pub requests_measured: u64,
    /// Mean utilization across all (healthy) disks over the whole run.
    pub mean_disk_utilization: f64,
    /// Utilization of each disk over the whole run (a failed disk reads
    /// as ~0). Exposes the load imbalance that layout criterion 2 exists
    /// to prevent.
    pub per_disk_utilization: Vec<f64>,
    /// Simulation events processed by the event loop — the denominator for
    /// simulator throughput (events per wall-clock second) in benchmarks.
    pub events_processed: u64,
}

/// Per-phase timing of reconstruction cycles (the paper's Table 8-1 rows).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CycleStats {
    /// Read-phase duration (collect + XOR the surviving units), ms.
    pub read_ms: OnlineStats,
    /// Write-phase duration (store the rebuilt unit), ms.
    pub write_ms: OnlineStats,
}

impl CycleStats {
    /// Mean full-cycle time, ms.
    pub fn cycle_ms(&self) -> f64 {
        self.read_ms.mean() + self.write_ms.mean()
    }
}

/// Results of a reconstruction run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReconReport {
    /// Wall-clock reconstruction time, or `None` if the run hit its limit
    /// before the replacement was fully rebuilt.
    pub reconstruction_time: Option<SimTime>,
    /// User response times during reconstruction.
    pub user: ResponseStats,
    /// User reads during reconstruction.
    pub reads: ResponseStats,
    /// User writes during reconstruction.
    pub writes: ResponseStats,
    /// Cycle statistics over the whole reconstruction.
    pub cycles: CycleStats,
    /// Cycle statistics over only the final cycles (the paper's Table 8-1
    /// averages the last 300 stripe units).
    pub last_cycles: CycleStats,
    /// Units rebuilt by the background sweep.
    pub units_swept: u64,
    /// Units rebuilt as a side effect of user activity (direct writes,
    /// piggybacked reads).
    pub units_by_users: u64,
    /// Units on the replacement disk that needed rebuilding.
    pub units_total: u64,
    /// Mean utilization of surviving disks over the run.
    pub survivor_utilization: f64,
    /// Utilization of the replacement disk over the run.
    pub replacement_utilization: f64,
    /// Rebuild trajectory: `(seconds, fraction rebuilt)` sampled at each
    /// whole percent of progress. Shows, e.g., the acceleration from
    /// user-driven "free" rebuilding under the piggybacking algorithms.
    pub progress: Vec<(f64, f64)>,
    /// Simulation events processed by the event loop — the denominator for
    /// simulator throughput (events per wall-clock second) in benchmarks.
    pub events_processed: u64,
}

impl ReconReport {
    /// Reconstruction time in seconds, if it completed.
    pub fn reconstruction_secs(&self) -> Option<f64> {
        self.reconstruction_time.map(|t| t.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_stats_sum() {
        let mut c = CycleStats::default();
        c.read_ms.push(88.0);
        c.write_ms.push(15.0);
        assert!((c.cycle_ms() - 103.0).abs() < 1e-12);
    }

    #[test]
    fn recon_secs_is_none_until_complete() {
        let mut r = ReconReport::default();
        assert_eq!(r.reconstruction_secs(), None);
        r.reconstruction_time = Some(SimTime::from_secs(120));
        assert_eq!(r.reconstruction_secs(), Some(120.0));
    }
}
