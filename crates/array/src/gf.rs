//! GF(256) arithmetic for the oracle's Reed–Solomon Q parity.
//!
//! The data plane proves the *algebra* of P+Q stripes independently of
//! the store's performance-oriented implementation, so this module is a
//! deliberate second implementation: log/exp tables built at first use
//! (the store multiplies bit-serially). Both use the conventional
//! RAID-6 field, GF(2⁸) modulo x⁸+x⁴+x³+x²+1 (0x11D) with generator 2,
//! so Q units computed here and there are byte-identical.

use std::sync::OnceLock;

/// The field polynomial, x⁸+x⁴+x³+x²+1.
const POLY: u16 = 0x11D;

/// `(exp, log)`: `exp[i] = 2^i` (doubled to 510 entries so products of
/// logs never need a modular reduction), `log[a]` its inverse for
/// `a != 0`.
fn tables() -> &'static ([u8; 510], [u8; 256]) {
    static TABLES: OnceLock<([u8; 510], [u8; 256])> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 510];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for i in 0..255 {
            exp[i] = x as u8;
            exp[i + 255] = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        (exp, log)
    })
}

/// `2^i` — the Q coefficient of data unit `i`.
pub fn pow2(i: usize) -> u8 {
    tables().0[i % 255]
}

/// Field product.
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let (exp, log) = tables();
    exp[log[a as usize] as usize + log[b as usize] as usize]
}

/// Multiplicative inverse.
///
/// # Panics
///
/// Panics on 0, which has no inverse.
pub fn inv(a: u8) -> u8 {
    assert_ne!(a, 0, "0 has no inverse in GF(256)");
    let (exp, log) = tables();
    exp[255 - log[a as usize] as usize]
}

/// `acc[k] ^= coeff · src[k]` — folds one coefficient-weighted unit
/// into a Q accumulator.
pub fn mul_into(acc: &mut [u8], src: &[u8], coeff: u8) {
    for (a, s) in acc.iter_mut().zip(src) {
        *a ^= mul(coeff, *s);
    }
}

/// `buf[k] = coeff · buf[k]` in place.
pub fn scale(buf: &mut [u8], coeff: u8) {
    for b in buf.iter_mut() {
        *b = mul(coeff, *b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_hold() {
        // Exhaustive: associativity on a sample grid, inverses exactly.
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a = {a}");
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
        }
        for a in (1..=255u8).step_by(7) {
            for b in (1..=255u8).step_by(11) {
                for c in (1..=255u8).step_by(13) {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn generator_has_full_order() {
        let mut seen = [false; 256];
        for i in 0..255 {
            let v = pow2(i);
            assert!(!seen[v as usize], "2^{i} repeats");
            seen[v as usize] = true;
        }
        assert_eq!(pow2(0), 1);
        assert_eq!(pow2(255), pow2(0), "order divides 255");
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn zero_has_no_inverse() {
        inv(0);
    }
}
