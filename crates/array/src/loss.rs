//! Data-loss assessment: which stripes become unrecoverable when a fault
//! lands beyond the array's fault tolerance.
//!
//! A stripe with `m` parity units survives any `m` unavailable units;
//! it loses data exactly when **more than `m`** of its units are
//! unavailable at once — two for the paper's single-parity layouts, three
//! for P+Q. [`assess_second_failure`] evaluates that criterion for every
//! stripe of the array at the instant a further whole-disk failure lands,
//! taking reconstruction progress into account:
//!
//! * a unit on the newly-failed disk is unavailable;
//! * a unit of the first failed disk is unavailable until rebuilt — and,
//!   under distributed sparing, unavailable *again* if its spare slot
//!   sits on the newly-failed disk;
//! * with a dedicated replacement, rebuilt units live on the replacement
//!   (same index as the first failure) and survive it.
//!
//! The function is pure — mapping + fault state in, lost stripes out — so
//! the exact-set tests in `tests/fault_injection.rs` can check it against
//! layouts where the answer is computable by hand.

use crate::report::{LossCause, LostStripe};
use crate::spare::SpareMap;
use decluster_core::layout::{ArrayMapping, UnitAddr};

/// Enumerates the stripes that lose data when `second` fails while
/// `first` (if any) is already failed or under reconstruction.
///
/// `rebuilt` is the first failure's per-offset rebuilt map (`None` when no
/// rebuild is active); `spares` is the distributed-sparing assignment
/// (`None` for a dedicated replacement, where a rebuilt unit lives at the
/// first failure's own index on the swapped-in drive).
///
/// Lost stripes come back in stripe-id order, each with its unavailable
/// units split into data and parity (a stripe's parity units are ordered
/// last). A stripe is lost only when its unavailable units exceed the
/// layout's parity count, so a P+Q array reports nothing here for a
/// second concurrent failure.
pub fn assess_second_failure(
    mapping: &ArrayMapping,
    first: Option<u16>,
    second: u16,
    rebuilt: Option<&[bool]>,
    spares: Option<&SpareMap>,
) -> Vec<LostStripe> {
    let unavailable = |u: UnitAddr| -> bool {
        if u.disk == second {
            return true;
        }
        if Some(u.disk) != first {
            return false;
        }
        match rebuilt {
            // Rebuilt: alive on the replacement (survives unless it was
            // rebuilt into a spare slot on the disk that just died).
            Some(r) if r[u.offset as usize] => match spares {
                Some(s) => s.spare_of(u.offset).is_none_or(|slot| slot.disk == second),
                None => false,
            },
            // Not rebuilt (or no rebuild at all): still lost.
            _ => true,
        }
    };

    let tolerated = mapping.parity_units_per_stripe();
    let mut lost = Vec::new();
    let mut units = Vec::new();
    for stripe in 0..mapping.stripes() {
        if !mapping.is_mapped(stripe) {
            continue;
        }
        units.clear();
        mapping.stripe_units_into(stripe, &mut units);
        let first_parity = units.len() - tolerated as usize; // parity ordered last
        let mut data = 0u16;
        let mut parity = 0u16;
        for (i, &u) in units.iter().enumerate() {
            if unavailable(u) {
                if i >= first_parity {
                    parity += 1;
                } else {
                    data += 1;
                }
            }
        }
        if data + parity > tolerated {
            lost.push(LostStripe {
                stripe,
                data_units: data,
                parity_units: parity,
                cause: LossCause::SecondDiskFailure,
            });
        }
    }
    lost
}

#[cfg(test)]
mod tests {
    use super::*;
    use decluster_core::design::BlockDesign;
    use decluster_core::layout::{DeclusteredLayout, ParityLayout};
    use std::sync::Arc;

    fn mapping(g: u16, units: u64) -> ArrayMapping {
        let layout: Arc<dyn ParityLayout> =
            Arc::new(DeclusteredLayout::new(BlockDesign::complete(6, g).unwrap()).unwrap());
        ArrayMapping::new(layout, units).unwrap()
    }

    /// Stripes holding units on both disks, straight from the mapping.
    fn sharing(m: &ArrayMapping, a: u16, b: u16) -> Vec<u64> {
        (0..m.stripes())
            .filter(|&s| {
                m.is_mapped(s) && {
                    let units = m.stripe_units(s);
                    units.iter().any(|u| u.disk == a) && units.iter().any(|u| u.disk == b)
                }
            })
            .collect()
    }

    #[test]
    fn no_prior_failure_loses_nothing() {
        let m = mapping(4, 120);
        assert!(assess_second_failure(&m, None, 2, None, None).is_empty());
    }

    #[test]
    fn degraded_double_failure_loses_exactly_the_shared_stripes() {
        let m = mapping(4, 120);
        let lost = assess_second_failure(&m, Some(0), 1, None, None);
        let ids: Vec<u64> = lost.iter().map(|l| l.stripe).collect();
        assert_eq!(ids, sharing(&m, 0, 1));
        for l in &lost {
            assert_eq!(l.data_units + l.parity_units, 2);
            assert_eq!(l.cause, LossCause::SecondDiskFailure);
        }
    }

    #[test]
    fn fully_rebuilt_replacement_survives_second_failure() {
        let m = mapping(4, 120);
        let rebuilt = vec![true; 120];
        let lost = assess_second_failure(&m, Some(0), 1, Some(&rebuilt), None);
        assert!(lost.is_empty(), "rebuilt units live on the replacement");
    }

    #[test]
    fn partially_rebuilt_loss_shrinks_with_progress() {
        let m = mapping(4, 120);
        let none = vec![false; 120];
        let half: Vec<bool> = (0..120).map(|o| o < 60).collect();
        let l_none = assess_second_failure(&m, Some(0), 1, Some(&none), None);
        let l_half = assess_second_failure(&m, Some(0), 1, Some(&half), None);
        assert!(l_half.len() < l_none.len());
    }

    #[test]
    fn pq_absorbs_a_second_failure_entirely() {
        let layout: Arc<dyn ParityLayout> = Arc::new(
            decluster_core::layout::PqLayout::new(BlockDesign::complete(6, 4).unwrap()).unwrap(),
        );
        let m = ArrayMapping::new(layout, 120).unwrap();
        for second in 1..m.disks() {
            assert!(
                assess_second_failure(&m, Some(0), second, None, None).is_empty(),
                "P+Q tolerates two concurrent failures (second = {second})"
            );
        }
    }

    #[test]
    fn distributed_sparing_survives_any_single_follow_on_failure() {
        // After a complete rebuild into spares, the placement constraint
        // (no spare on a disk holding a unit of the same stripe)
        // guarantees zero loss for ANY second failure.
        let m = mapping(4, 120);
        let spares = SpareMap::build(&m, 0, 40).unwrap();
        let rebuilt = vec![true; 120];
        for second in 1..m.disks() {
            let lost = assess_second_failure(&m, Some(0), second, Some(&rebuilt), Some(&spares));
            assert!(lost.is_empty(), "disk {second} failure lost {lost:?}");
        }
    }
}
