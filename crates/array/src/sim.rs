//! The event-driven array simulator.

use crate::config::ArrayConfig;
use crate::loss::assess_second_failure;
use crate::plan::{plan_user_access_with, FaultView, PlannedIo};
use crate::report::{
    CrashReport, CycleStats, DataLossReport, LossCause, LostStripe, OpStats, ReconReport,
    RunReport, ScrubReport,
};
use crate::slab::Slab;
use crate::spare::SpareMap;
use decluster_core::error::Error;
use decluster_core::layout::{ArrayMapping, ParityLayout, UnitAddr};
use decluster_core::recon::ReconAlgorithm;
use decluster_disk::{AccessOutcome, Disk, DiskRequest, IoKind, MediaFaultModel, Priority};
use decluster_sim::probe::{DiskSample, NoProbe, OpClass, Probe};
use decluster_sim::{EventQueue, SimTime};
use decluster_workload::{trace::Trace, AccessKind, UserRequest, Workload, WorkloadSpec};
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

/// Cycles kept for the "final cycles" statistics; the paper's Table 8-1
/// averages the reconstruction of the last 300 stripe units.
const LAST_CYCLE_WINDOW: usize = 300;

/// Low half of an io id: the issuing op's slot in the ops slab.
fn op_of_io(io_id: u64) -> u32 {
    (io_id & u32::MAX as u64) as u32
}

/// Simulation events.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// The pending user request arrives.
    Arrival,
    /// The access in service at a disk completes.
    DiskDone(u16),
    /// A throttled reconstruction process wakes for its next cycle.
    ReconKick(usize),
    /// A disk fails mid-run (scheduled failure injection).
    DiskFail(u16),
    /// The patrol-read scrubber wakes to (maybe) verify the next stripe.
    ScrubKick,
    /// Power is cut ([`CrashPlan`]): in-flight writes tear and the run
    /// ends with a [`CrashReport`].
    Crash,
}

/// One in-flight operation (user access, reconstruction cycle, or
/// background piggyback write).
#[derive(Debug)]
struct Op {
    /// `Some` for user accesses: kind and arrival time.
    user: Option<(AccessKind, SimTime)>,
    /// Disk accesses still in flight in the current phase.
    outstanding: u32,
    /// Accesses to issue when the current phase drains.
    phase2: Vec<PlannedIo>,
    /// Replacement-disk offset marked rebuilt when the op completes.
    mark_rebuilt: Option<u64>,
    /// Replacement-disk offset to piggyback-write after completion.
    piggyback: Option<u64>,
    /// Reconstruction-cycle bookkeeping.
    recon: Option<ReconCycle>,
    /// Issue this op's accesses at background priority.
    background: bool,
    /// For sub-plans of a multi-unit user access: the parent request's
    /// slot in the parents slab.
    parent: Option<u32>,
    /// The logical span this op covers, for retry after a mid-run disk
    /// failure aborts it.
    span: Option<(u64, u64)>,
    /// Set when a disk failure dropped one of this op's accesses: the op
    /// drains its surviving accesses and is then retried.
    aborted: bool,
    /// Set when a reconstruction cycle's survivor read hit an unreadable
    /// sector: the stripe is unrecoverable, so the cycle skips its write
    /// and resolves the offset as lost instead of rebuilt.
    lost_cycle: bool,
    /// `Some((stripe, started))` for a patrol-read verify cycle of that
    /// stripe, stamped with the cycle's start time so its duration can be
    /// observed.
    scrub: Option<(u64, SimTime)>,
    /// Whether the phase currently in flight issues writes (phases are
    /// homogeneous: reads then writes). With `phase_size` this classifies
    /// the op at a crash: a write phase with some-but-not-all accesses
    /// landed is *torn*.
    writing: bool,
    /// Accesses the current phase started with (`outstanding` counts how
    /// many have not yet landed).
    phase_size: u32,
}

/// A schedule of whole-disk failures to inject into a run, built before
/// the simulation starts and installed with [`ArraySim::inject_faults`].
///
/// A plan with more than one failure (or one failure on top of an array
/// already degraded or rebuilding) drives the array beyond its
/// single-failure tolerance: the run ends at the fatal failure and the
/// report's [`DataLossReport`] enumerates the stripes that became
/// unrecoverable.
///
/// # Examples
///
/// ```
/// use decluster_array::FaultPlan;
/// use decluster_sim::SimTime;
///
/// let plan = FaultPlan::new()
///     .fail_at(3, SimTime::from_secs(10))
///     .fail_at(7, SimTime::from_secs(25));
/// assert_eq!(plan.failures().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    failures: Vec<(u16, SimTime)>,
}

impl FaultPlan {
    /// An empty plan (no failures).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a whole-disk failure of `disk` at simulated time `at`.
    pub fn fail_at(mut self, disk: u16, at: SimTime) -> FaultPlan {
        self.failures.push((disk, at));
        self
    }

    /// The scheduled failures, in insertion order.
    pub fn failures(&self) -> &[(u16, SimTime)] {
        &self.failures
    }
}

/// A scheduled power loss: at the planned instant the array stops dead —
/// every disk access still in flight is abandoned where it stood, so a
/// read-modify-write whose writes had partially landed leaves its stripe's
/// parity inconsistent with its data (the RAID-5 *write hole*).
///
/// The run ends at the cut; the report's [`CrashReport`] records exactly
/// which stripes were torn and which a dirty-region log would have named,
/// and [`crate::recovery::recover`] replays restart recovery from it.
///
/// # Examples
///
/// ```
/// use decluster_array::CrashPlan;
/// use decluster_sim::SimTime;
///
/// let plan = CrashPlan::at(SimTime::from_secs(5));
/// assert_eq!(plan.when(), SimTime::from_secs(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    at: SimTime,
}

impl CrashPlan {
    /// Cuts power at simulated time `at`.
    pub fn at(at: SimTime) -> CrashPlan {
        CrashPlan { at }
    }

    /// The planned instant of the cut.
    pub fn when(&self) -> SimTime {
        self.at
    }
}

/// Patrol-read scrubber state (present only when
/// [`crate::ScrubConfig::enabled`]).
#[derive(Debug)]
struct Scrub {
    /// Next stripe (by mapping sequence index) to verify.
    cursor: u64,
    /// Verify cycles currently in flight.
    active: u32,
    /// Accumulated statistics, moved into the run report at the end.
    report: ScrubReport,
}

/// How a rebuilt offset got resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RebuildCredit {
    /// The background sweep reconstructed it.
    Sweep,
    /// User activity reconstructed it (direct write or piggyback).
    User,
    /// Its stripe proved unrecoverable; the offset is resolved so the
    /// sweep can terminate, and counted as lost.
    Lost,
}

/// Accumulated data-loss state (second failures, unreadable sectors).
#[derive(Debug, Default)]
struct LossLog {
    stripes: Vec<LostStripe>,
    /// Stripe ids already recorded, so a media error and a later second
    /// failure never double-count a stripe.
    seen: HashSet<u64>,
    second_failure: Option<(u16, SimTime)>,
    rebuilt_before_loss: Option<(u64, u64)>,
}

impl LossLog {
    fn record(&mut self, stripe: LostStripe) {
        if self.seen.insert(stripe.stripe) {
            self.stripes.push(stripe);
        }
    }

    fn into_report(self) -> DataLossReport {
        DataLossReport {
            stripes: self.stripes,
            second_failure: self.second_failure,
            rebuilt_before_loss: self.rebuilt_before_loss,
        }
    }
}

#[derive(Debug)]
struct ReconCycle {
    process: usize,
    started: SimTime,
    read_done: Option<SimTime>,
}

/// Reconstruction state.
#[derive(Debug)]
struct Rebuild {
    failed: u16,
    algorithm: ReconAlgorithm,
    rebuilt: Vec<bool>,
    rebuilt_count: u64,
    target: u64,
    cursor: u64,
    processes: usize,
    finished: Option<SimTime>,
    cycles: CycleStats,
    recent: VecDeque<(f64, f64)>,
    swept: u64,
    by_users: u64,
    units_lost: u64,
    spares: Option<SpareMap>,
    progress: Vec<(f64, f64)>,
}

/// Where user requests come from.
#[derive(Debug)]
enum RequestSource {
    /// The synthetic generator (the paper's workload).
    Synthetic(Workload),
    /// Replay of a recorded trace; arrivals stop when it runs out.
    Trace(std::vec::IntoIter<UserRequest>),
}

impl RequestSource {
    fn next_request(&mut self) -> Option<UserRequest> {
        match self {
            RequestSource::Synthetic(w) => Some(w.next_request()),
            RequestSource::Trace(iter) => iter.next(),
        }
    }
}

/// Fault state of the array.
#[derive(Debug)]
enum Fault {
    None,
    Degraded { failed: u16 },
    Rebuilding(Box<Rebuild>),
}

/// A complete simulated array: disks, striping driver, workload, and (when
/// active) reconstruction.
///
/// A simulator instance runs exactly one scenario: configure it
/// (optionally [`ArraySim::fail_disk`] and
/// [`ArraySim::start_reconstruction`]), then consume it with
/// [`ArraySim::run_for`] or [`ArraySim::run_until_reconstructed`].
///
/// See the crate docs for an end-to-end example.
///
/// The `P` type parameter is the instrumentation [`Probe`]. It defaults
/// to [`NoProbe`], whose hooks are empty and compile away entirely, so
/// uninstrumented simulations pay nothing. Pass a
/// [`Recorder`](decluster_sim::Recorder) via [`ArraySim::new_probed`] to
/// capture latency histograms, per-disk utilization timelines, and an
/// optional event trace in the report's
/// [`observations`](RunReport::observations).
#[derive(Debug)]
pub struct ArraySim<P: Probe = NoProbe> {
    cfg: ArrayConfig,
    mapping: ArrayMapping,
    disks: Vec<Disk>,
    queue: EventQueue<Event>,
    source: RequestSource,
    pending_arrival: Option<UserRequest>,
    arrival_cutoff: SimTime,
    /// In-flight operations. A disk io's id encodes its op's slot in its
    /// low 32 bits (see [`ArraySim::issue`]), so completions find their op
    /// with one indexed load — no id→op map at all.
    ops: Slab<Op>,
    /// Multi-unit user requests awaiting their sub-plans:
    /// `(kind, arrival, outstanding sub-plans)`.
    parents: Slab<(AccessKind, SimTime, u32)>,
    /// Distinguishes ios of successive ops reusing the same slot (upper 32
    /// bits of each io id).
    io_seq: u32,
    fault: Fault,
    scheduled_failures: Vec<(u16, SimTime)>,
    loss: LossLog,
    /// Set when a failure beyond the single-failure tolerance ends the
    /// run: the time the fatal failure landed.
    terminal_at: Option<SimTime>,
    /// Patrol-read scrubber, when enabled by the configuration.
    scrub: Option<Scrub>,
    /// User requests in flight (arrived, not yet fully responded): the
    /// scrubber's idle detector.
    user_inflight: u32,
    /// Scheduled power loss, consumed when its event fires.
    crash_plan: Option<SimTime>,
    /// The write-hole state captured when the crash fired.
    crash: Option<CrashReport>,
    /// Scratch for stripe unit addresses, reused across events.
    scratch_units: Vec<UnitAddr>,
    /// Scratch for planned ios (reconstruction cycles), reused across
    /// events.
    scratch_ios: Vec<PlannedIo>,
    events_processed: u64,
    // Measurement.
    measure_from: SimTime,
    stats: OpStats,
    requests_issued: u64,
    requests_measured: u64,
    started: bool,
    /// Instrumentation hooks; [`NoProbe`] by default, in which case every
    /// call below is guarded by `P::ACTIVE` and compiles to nothing.
    probe: P,
}

/// Options for [`ArraySim::start_reconstruction`]: which algorithm runs,
/// how many parallel sweep processes it uses, and whether rebuilt units
/// land on distributed spare space instead of a replacement disk.
///
/// # Examples
///
/// ```
/// use decluster_array::ReconOptions;
/// use decluster_core::recon::ReconAlgorithm;
///
/// let opts = ReconOptions::new(ReconAlgorithm::Redirect)
///     .processes(4)
///     .distributed();
/// assert_eq!(opts.process_count(), 4);
/// assert!(opts.is_distributed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconOptions {
    algorithm: ReconAlgorithm,
    processes: usize,
    distributed: bool,
}

impl ReconOptions {
    /// Rebuild with `algorithm`, one sweep process, onto a replacement
    /// disk.
    pub fn new(algorithm: ReconAlgorithm) -> ReconOptions {
        ReconOptions {
            algorithm,
            processes: 1,
            distributed: false,
        }
    }

    /// Sets the number of parallel reconstruction processes.
    #[must_use]
    pub fn processes(mut self, processes: usize) -> ReconOptions {
        self.processes = processes;
        self
    }

    /// Rebuilds onto the array's reserved distributed spare space instead
    /// of a replacement disk (requires
    /// [`spare reservation`](crate::ArrayConfigBuilder::distributed_spares)).
    #[must_use]
    pub fn distributed(mut self) -> ReconOptions {
        self.distributed = true;
        self
    }

    /// The reconstruction algorithm.
    pub fn algorithm(&self) -> ReconAlgorithm {
        self.algorithm
    }

    /// Parallel sweep processes.
    pub fn process_count(&self) -> usize {
        self.processes
    }

    /// Whether rebuilt units land on distributed spare space.
    pub fn is_distributed(&self) -> bool {
        self.distributed
    }
}

impl ArraySim {
    /// Builds a simulator for `layout` with the paper's disk model.
    ///
    /// `seed_stream` distinguishes replicated runs of the same
    /// configuration (it is folded into the workload seed).
    ///
    /// # Errors
    ///
    /// Returns an error if the layout cannot map the configured disk size
    /// (see [`ArrayMapping::new`]).
    pub fn new(
        layout: Arc<dyn ParityLayout>,
        cfg: ArrayConfig,
        spec: WorkloadSpec,
        seed_stream: u64,
    ) -> Result<ArraySim, Error> {
        ArraySim::new_probed(layout, cfg, spec, seed_stream, NoProbe)
    }

    /// Builds a simulator that replays a recorded [`Trace`] instead of the
    /// synthetic generator. Arrivals stop when the trace is exhausted.
    ///
    /// # Errors
    ///
    /// Returns an error if the layout cannot map the configured disk size
    /// or a trace request addresses units beyond the array's capacity.
    pub fn with_trace(
        layout: Arc<dyn ParityLayout>,
        cfg: ArrayConfig,
        trace: Trace,
    ) -> Result<ArraySim, Error> {
        ArraySim::with_trace_probed(layout, cfg, trace, NoProbe)
    }
}

impl<P: Probe> ArraySim<P> {
    /// [`ArraySim::new`] with an instrumentation `probe` attached; the
    /// probe's findings come back in the report's `observations`.
    ///
    /// # Errors
    ///
    /// Returns an error if the layout cannot map the configured disk size
    /// (see [`ArrayMapping::new`]).
    pub fn new_probed(
        layout: Arc<dyn ParityLayout>,
        cfg: ArrayConfig,
        spec: WorkloadSpec,
        seed_stream: u64,
        probe: P,
    ) -> Result<ArraySim<P>, Error> {
        let mapping = ArrayMapping::new(layout, cfg.data_units_per_disk())?;
        let disks = (0..mapping.disks())
            .map(|d| Self::make_disk(&cfg, d as usize))
            .collect();
        let workload = Workload::new(
            spec,
            mapping.data_units(),
            cfg.seed ^ seed_stream.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        Ok(Self::with_source(
            cfg,
            mapping,
            disks,
            RequestSource::Synthetic(workload),
            probe,
        ))
    }

    /// [`ArraySim::with_trace`] with an instrumentation `probe` attached.
    ///
    /// # Errors
    ///
    /// Returns an error if the layout cannot map the configured disk size
    /// or a trace request addresses units beyond the array's capacity.
    pub fn with_trace_probed(
        layout: Arc<dyn ParityLayout>,
        cfg: ArrayConfig,
        trace: Trace,
        probe: P,
    ) -> Result<ArraySim<P>, Error> {
        let mapping = ArrayMapping::new(layout, cfg.data_units_per_disk())?;
        for r in trace.iter() {
            if r.logical_unit + r.units > mapping.data_units() {
                return Err(Error::BadParameters {
                    reason: format!(
                        "trace request [{}, +{}) beyond array capacity {}",
                        r.logical_unit,
                        r.units,
                        mapping.data_units()
                    ),
                });
            }
        }
        let disks = (0..mapping.disks())
            .map(|d| Self::make_disk(&cfg, d as usize))
            .collect();
        let source = RequestSource::Trace(trace.requests().to_vec().into_iter());
        Ok(Self::with_source(cfg, mapping, disks, source, probe))
    }

    fn with_source(
        cfg: ArrayConfig,
        mapping: ArrayMapping,
        disks: Vec<Disk>,
        source: RequestSource,
        probe: P,
    ) -> ArraySim<P> {
        // In-flight events are bounded by the disk count (one completion
        // per disk in service) plus arrivals, recon kicks, failure
        // injections, and the scrubber's self-rescheduling kick; a couple
        // of events per disk plus slack covers the working set without
        // ever regrowing the heap. `prepare_run` reserves for the
        // run-specific sources (failure plan, crash, recon kicks) once the
        // scenario is known.
        let queue = EventQueue::with_capacity(disks.len() * 2 + 64);
        ArraySim {
            cfg,
            mapping,
            disks,
            queue,
            source,
            pending_arrival: None,
            arrival_cutoff: SimTime::MAX,
            ops: Slab::new(),
            parents: Slab::new(),
            io_seq: 0,
            fault: Fault::None,
            scheduled_failures: Vec::new(),
            loss: LossLog::default(),
            terminal_at: None,
            scrub: cfg.scrub.enabled.then(|| Scrub {
                cursor: 0,
                active: 0,
                report: ScrubReport::default(),
            }),
            user_inflight: 0,
            crash_plan: None,
            crash: None,
            scratch_units: Vec::new(),
            scratch_ios: Vec::new(),
            events_processed: 0,
            measure_from: SimTime::ZERO,
            stats: OpStats::default(),
            requests_issued: 0,
            requests_measured: 0,
            started: false,
            probe,
        }
    }

    /// The array mapping in use.
    pub fn mapping(&self) -> &ArrayMapping {
        &self.mapping
    }

    fn make_disk(cfg: &ArrayConfig, label: usize) -> Disk {
        let mut disk = if cfg.recon_priority {
            Disk::with_priority_scheduling(cfg.geometry, label, cfg.sched)
        } else {
            Disk::with_policy(cfg.geometry, label, cfg.sched)
        };
        if cfg.media_faults.is_active() {
            disk.set_fault_model(MediaFaultModel::new(cfg.media_faults, label));
        }
        disk
    }

    fn invalid<T>(reason: impl Into<String>) -> Result<T, Error> {
        Err(Error::InvalidState {
            reason: reason.into(),
        })
    }

    /// Marks `disk` failed (degraded mode, no replacement yet).
    ///
    /// # Errors
    ///
    /// Returns an error if called after a run started, if the disk is out
    /// of range, if a disk already failed (at most one failure may exist
    /// before the run — further failures are *scheduled* with
    /// [`ArraySim::inject_faults`]), or if `disk` is already scheduled to
    /// fail.
    pub fn fail_disk(&mut self, disk: u16) -> Result<(), Error> {
        if self.started {
            return Self::invalid("fail_disk must precede the run");
        }
        if disk >= self.mapping.disks() {
            return Self::invalid(format!("disk {disk} out of range"));
        }
        if !matches!(self.fault, Fault::None) {
            return Self::invalid("a disk already failed before the run");
        }
        if self.scheduled_failures.iter().any(|&(d, _)| d == disk) {
            return Self::invalid(format!("disk {disk} is already scheduled to fail"));
        }
        self.fault = Fault::Degraded { failed: disk };
        Ok(())
    }

    /// Schedules `disk` to fail at `at`, mid-run: accesses in flight on it
    /// are lost and the operations that issued them retry under the
    /// degraded state — the continuous-operation transition the paper's
    /// steady-state experiments bracket from both sides.
    ///
    /// If the failure lands while the array is already degraded or
    /// rebuilding, it exceeds the single-failure tolerance: the run ends
    /// there and the report's [`DataLossReport`] lists the stripes lost.
    ///
    /// # Errors
    ///
    /// Returns an error if a run started, `disk` is out of range, `disk`
    /// already failed, or `disk` is already scheduled to fail.
    pub fn fail_disk_at(&mut self, disk: u16, at: SimTime) -> Result<(), Error> {
        self.schedule_failure(disk, at)
    }

    /// Installs a whole [`FaultPlan`]: every failure in the plan is
    /// scheduled for injection when the run starts.
    ///
    /// # Errors
    ///
    /// Returns an error if a run started, or if any planned failure is
    /// out of range, duplicates an already-failed disk, or duplicates
    /// another scheduled failure. Failures before the error were already
    /// installed; discard the simulator on error.
    pub fn inject_faults(&mut self, plan: &FaultPlan) -> Result<(), Error> {
        for &(disk, at) in plan.failures() {
            self.schedule_failure(disk, at)?;
        }
        Ok(())
    }

    /// Installs a [`CrashPlan`]: power is cut at the planned time, tearing
    /// in-flight parity updates, and the run ends there with a
    /// [`CrashReport`] in the run's report.
    ///
    /// # Errors
    ///
    /// Returns an error if a run started or a crash is already planned.
    pub fn inject_crash(&mut self, plan: &CrashPlan) -> Result<(), Error> {
        if self.started {
            return Self::invalid("crash injection must precede the run");
        }
        if self.crash_plan.is_some() {
            return Self::invalid("a crash is already planned");
        }
        self.crash_plan = Some(plan.when());
        Ok(())
    }

    fn schedule_failure(&mut self, disk: u16, at: SimTime) -> Result<(), Error> {
        if self.started {
            return Self::invalid("fault injection must precede the run");
        }
        if disk >= self.mapping.disks() {
            return Self::invalid(format!("disk {disk} out of range"));
        }
        let already_failed = match &self.fault {
            Fault::None => None,
            Fault::Degraded { failed } => Some(*failed),
            Fault::Rebuilding(r) => Some(r.failed),
        };
        // Note: under a dedicated replacement the failed disk's slot holds
        // a fresh drive once reconstruction is armed; re-failing that slot
        // is still rejected to keep failure identities unambiguous.
        if already_failed == Some(disk) {
            return Self::invalid(format!("disk {disk} already failed"));
        }
        if self.scheduled_failures.iter().any(|&(d, _)| d == disk) {
            return Self::invalid(format!("disk {disk} is already scheduled to fail"));
        }
        self.scheduled_failures.push((disk, at));
        Ok(())
    }

    /// Arms reconstruction of the failed disk per `opts`.
    ///
    /// Under the default (dedicated-replacement) options a fresh drive is
    /// swapped into the failed slot and `opts.process_count()` processes
    /// rebuild it running `opts.algorithm()`. With
    /// [`ReconOptions::distributed`] the failed disk stays dead and every
    /// lost unit is rebuilt into a reserved spare slot on a surviving disk
    /// (see [`crate::spare::SpareMap`]).
    ///
    /// # Errors
    ///
    /// Returns an error if no disk has failed, a run has already started,
    /// or `opts.process_count()` is zero. Distributed sparing additionally
    /// requires reserved spare space
    /// ([`ArrayConfigBuilder::distributed_spares`](crate::ArrayConfigBuilder::distributed_spares))
    /// that can absorb the failed disk (the [`SpareMap::build`] error is
    /// propagated).
    pub fn start_reconstruction(&mut self, opts: ReconOptions) -> Result<(), Error> {
        if opts.distributed && self.cfg.spare_units_per_disk == 0 {
            return Self::invalid("distributed sparing requires reserved spare space");
        }
        let failed = self.check_rebuild_preconditions(opts.processes)?;
        let spares = if opts.distributed {
            Some(SpareMap::build(
                &self.mapping,
                failed,
                self.cfg.spare_units_per_disk,
            )?)
        } else {
            // Physically swap in a new drive.
            self.disks[failed as usize] = Self::make_disk(&self.cfg, failed as usize);
            None
        };
        self.arm_rebuild(failed, opts.algorithm, opts.processes, spares);
        Ok(())
    }

    fn check_rebuild_preconditions(&self, processes: usize) -> Result<u16, Error> {
        if self.started {
            return Self::invalid("start_reconstruction must precede the run");
        }
        if processes == 0 {
            return Self::invalid("need at least one reconstruction process");
        }
        match self.fault {
            Fault::Degraded { failed } => Ok(failed),
            _ => Self::invalid("start_reconstruction requires a failed disk"),
        }
    }

    fn arm_rebuild(
        &mut self,
        failed: u16,
        algorithm: ReconAlgorithm,
        processes: usize,
        spares: Option<SpareMap>,
    ) {
        let units = self.mapping.units_per_disk();
        let target = (0..units)
            .filter(|&o| self.mapping.role_at(failed, o) != decluster_core::UnitRole::Unmapped)
            .count() as u64;
        self.fault = Fault::Rebuilding(Box::new(Rebuild {
            failed,
            algorithm,
            rebuilt: vec![false; units as usize],
            rebuilt_count: 0,
            target,
            cursor: 0,
            processes,
            finished: None,
            cycles: CycleStats::default(),
            recent: VecDeque::with_capacity(LAST_CYCLE_WINDOW + 1),
            swept: 0,
            by_users: 0,
            units_lost: 0,
            spares,
            progress: Vec::with_capacity(101),
        }));
    }

    /// Marks the run started and schedules every pre-planned event source
    /// (failure injections, the crash, the scrubber's first kick, the
    /// first arrival), reserving queue head-room for all of them up front
    /// so the event heap never regrows mid-run — the scrubber's backoff
    /// re-arm used to push past the initial capacity.
    fn prepare_run(&mut self) {
        self.started = true;
        let recon_processes = match &self.fault {
            Fault::Rebuilding(r) => r.processes,
            _ => 0,
        };
        self.queue.reserve(
            self.scheduled_failures.len()
                + usize::from(self.crash_plan.is_some())
                + if self.scrub.is_some() { 2 } else { 0 }
                + recon_processes
                + 1,
        );
        for &(disk, at) in &self.scheduled_failures {
            self.queue.schedule(at, Event::DiskFail(disk));
        }
        if let Some(at) = self.crash_plan {
            self.queue.schedule(at, Event::Crash);
        }
        self.schedule_first_scrub_kick();
        self.schedule_next_arrival();
    }

    /// One probe sampling pass over the disks, run after each dispatched
    /// event when the probe is active and its sampling interval elapsed.
    fn probe_disks(&mut self, now: SimTime) {
        if !self.probe.sample_due(now) {
            return;
        }
        for d in &self.disks {
            self.probe.disk_sample(
                now,
                DiskSample {
                    disk: d.label() as u16,
                    busy_us: d.stats().busy_us,
                    queue_depth: d.queue_len() as u32 + u32::from(d.is_busy()),
                },
            );
        }
    }

    /// Runs a steady-state scenario (fault-free or degraded): user requests
    /// arrive until `duration`, responses of requests arriving after
    /// `warmup` are measured, and the run drains before reporting.
    ///
    /// A scheduled failure beyond the single-failure tolerance ends the
    /// run early: `elapsed` is truncated to the fatal failure's time and
    /// the report's [`RunReport::data_loss`] lists the stripes lost.
    ///
    /// # Panics
    ///
    /// Panics if reconstruction was armed (use
    /// [`ArraySim::run_until_reconstructed`]) or `warmup >= duration`.
    pub fn run_for(mut self, duration: SimTime, warmup: SimTime) -> RunReport {
        assert!(
            !matches!(self.fault, Fault::Rebuilding(_)),
            "run_for is for steady-state scenarios"
        );
        assert!(warmup < duration, "warmup must precede duration");
        self.measure_from = warmup;
        self.arrival_cutoff = duration;
        self.prepare_run();

        while let Some((now, event)) = self.queue.pop() {
            self.dispatch(now, event);
            if P::ACTIVE {
                self.probe_disks(now);
            }
            if self.terminal_at.is_some() {
                break;
            }
        }

        let elapsed = self.terminal_at.unwrap_or(duration);
        let first_failed = match self.fault {
            Fault::Degraded { failed } => Some(failed),
            _ => None,
        };
        let healthy: Vec<&Disk> = self
            .disks
            .iter()
            .filter(|d| Some(d.label() as u16) != first_failed && !d.is_failed())
            .collect();
        let mean_util = healthy
            .iter()
            .map(|d| d.stats().utilization(elapsed))
            .sum::<f64>()
            / healthy.len() as f64;
        let per_disk = self
            .disks
            .iter()
            .map(|d| d.stats().utilization(elapsed))
            .collect();
        let exposed = self.exposed_defects(first_failed);
        let observations = if P::ACTIVE {
            self.probe.collect(elapsed)
        } else {
            None
        };
        RunReport {
            ops: self.stats,
            elapsed,
            requests_issued: self.requests_issued,
            requests_measured: self.requests_measured,
            mean_disk_utilization: mean_util,
            per_disk_utilization: per_disk,
            events_processed: self.events_processed,
            data_loss: self.loss.into_report(),
            scrub: self.scrub.map(|s| s.report),
            crash: self.crash,
            exposed_defects: exposed,
            observations,
        }
    }

    /// Runs the reconstruction scenario: user requests flow continuously
    /// while the armed processes rebuild the replacement disk. Stops when
    /// the last unit is rebuilt, or at `limit`.
    ///
    /// Scheduled failures ([`ArraySim::inject_faults`]) fire mid-rebuild:
    /// a second whole-disk failure ends the run at its injection time with
    /// the stripes lost recorded in [`ReconReport::data_loss`]. When the
    /// rebuild completes before any pending failure fires, the run keeps
    /// serving user requests until the failure lands, so a post-completion
    /// failure verifies the restored redundancy (zero loss under a
    /// dedicated replacement).
    ///
    /// # Panics
    ///
    /// Panics if reconstruction was not armed.
    pub fn run_until_reconstructed(mut self, limit: SimTime) -> ReconReport {
        let processes = match &self.fault {
            Fault::Rebuilding(r) => r.processes,
            _ => panic!("run_until_reconstructed requires start_reconstruction"),
        };
        self.measure_from = SimTime::ZERO;
        // Disruptions the run must wait for even after the rebuild
        // finishes: scheduled failures and the planned crash.
        let mut pending_disruptions =
            self.scheduled_failures.len() + usize::from(self.crash_plan.is_some());
        self.prepare_run();
        for p in 0..processes {
            self.start_recon_cycle(p, SimTime::ZERO);
        }

        let mut finish = None;
        while let Some((now, event)) = self.queue.pop() {
            if now > limit {
                break;
            }
            if matches!(event, Event::DiskFail(_) | Event::Crash) {
                pending_disruptions -= 1;
            }
            self.dispatch(now, event);
            if P::ACTIVE {
                self.probe_disks(now);
            }
            if self.terminal_at.is_some() {
                break;
            }
            if let Fault::Rebuilding(r) = &self.fault {
                if let Some(t) = r.finished {
                    finish = Some(t);
                    if pending_disruptions == 0 {
                        break;
                    }
                }
            }
        }

        let end = self.terminal_at.or(finish).unwrap_or(limit);
        let exposed = match &self.fault {
            Fault::Rebuilding(r) => self.exposed_defects(Some(r.failed)),
            _ => None,
        };
        let r = match self.fault {
            Fault::Rebuilding(r) => r,
            _ => unreachable!(),
        };
        let distributed = r.spares.is_some();
        let survivors: Vec<&Disk> = self
            .disks
            .iter()
            .filter(|d| d.label() as u16 != r.failed && !d.is_failed())
            .collect();
        let survivor_util = survivors
            .iter()
            .map(|d| d.stats().utilization(end))
            .sum::<f64>()
            / survivors.len() as f64;
        let mut last_cycles = CycleStats::default();
        for &(read, write) in &r.recent {
            last_cycles.read_ms.push(read);
            last_cycles.write_ms.push(write);
        }
        let observations = if P::ACTIVE {
            self.probe.collect(end)
        } else {
            None
        };
        ReconReport {
            reconstruction_time: finish,
            ops: self.stats,
            cycles: r.cycles,
            last_cycles,
            units_swept: r.swept,
            units_by_users: r.by_users,
            units_lost: r.units_lost,
            units_total: r.target,
            progress: r.progress,
            survivor_utilization: survivor_util,
            replacement_utilization: if distributed || self.disks[r.failed as usize].is_failed() {
                0.0 // no (live) replacement disk exists
            } else {
                self.disks[r.failed as usize].stats().utilization(end)
            },
            events_processed: self.events_processed,
            data_loss: self.loss.into_report(),
            scrub: self.scrub.map(|s| s.report),
            crash: self.crash,
            exposed_defects: exposed,
            observations,
        }
    }

    // --- Event handling --------------------------------------------------

    fn dispatch(&mut self, now: SimTime, event: Event) {
        self.events_processed += 1;
        match event {
            Event::Arrival => self.on_arrival(now),
            Event::DiskDone(disk) => self.on_disk_done(disk, now),
            Event::ReconKick(process) => self.start_recon_cycle(process, now),
            Event::DiskFail(disk) => self.on_disk_fail(disk, now),
            Event::ScrubKick => self.on_scrub_kick(now),
            Event::Crash => self.on_crash(now),
        }
    }

    fn on_disk_fail(&mut self, disk: u16, now: SimTime) {
        if !matches!(self.fault, Fault::None) {
            self.on_fatal_failure(disk, now);
            return;
        }
        self.fault = Fault::Degraded { failed: disk };
        for io_id in self.disks[disk as usize].fail() {
            let op_id = op_of_io(io_id);
            let op = self.ops.get_mut(op_id).expect("lost io belongs to no op");
            debug_assert!(op.recon.is_none(), "no reconstruction during steady state");
            op.aborted = true;
            op.outstanding -= 1;
            if op.outstanding == 0 {
                self.retry_op(op_id, now);
            }
        }
        // An op whose in-flight ios all live on surviving disks is not in
        // the lost-io list above, yet its queued phase-2 writes may still
        // name the dead disk (the plan predates the failure; a completed
        // phase-1 read on the dying disk leaves no in-flight trace).
        // Abort those too, so they drain and replan under the degraded
        // view instead of submitting to a failed disk.
        let stale: Vec<u32> = self
            .ops
            .iter()
            .filter(|(_, op)| !op.aborted && op.phase2.iter().any(|io| io.disk == disk))
            .map(|(id, _)| id)
            .collect();
        for op_id in stale {
            let op = self.ops.get_mut(op_id).expect("stale op vanished");
            debug_assert!(op.outstanding > 0, "live op with no in-flight io");
            op.aborted = true;
        }
    }

    /// A whole-disk failure landed while the array was already degraded
    /// or rebuilding: assess which stripes are now unrecoverable, record
    /// the loss, and end the run (the caller's event loop observes
    /// `terminal_at`).
    fn on_fatal_failure(&mut self, disk: u16, now: SimTime) {
        let (first, rebuilt, spares, progress) = match &self.fault {
            Fault::Degraded { failed } => (Some(*failed), None, None, None),
            Fault::Rebuilding(r) => (
                Some(r.failed),
                Some(r.rebuilt.as_slice()),
                r.spares.as_ref(),
                Some((r.rebuilt_count, r.target)),
            ),
            Fault::None => unreachable!("fatal failure requires a prior fault"),
        };
        let lost = assess_second_failure(&self.mapping, first, disk, rebuilt, spares);
        for stripe in lost {
            self.loss.record(stripe);
        }
        self.loss.second_failure = Some((disk, now));
        self.loss.rebuilt_before_loss = progress;
        // The run is over: in-flight ios on the dead disk are dropped
        // without retry.
        self.disks[disk as usize].fail();
        self.terminal_at = Some(now);
    }

    /// Retries an aborted user operation under the current fault view; the
    /// original arrival time is preserved so the retry's latency counts.
    fn retry_op(&mut self, op_id: u32, now: SimTime) {
        let op = self.ops.remove(op_id).expect("retrying unknown op");
        let Some((start, count)) = op.span else {
            // Background work: a piggyback write is simply dropped, but a
            // scrub cycle must release its in-flight slot or the patrol
            // stalls at its outstanding cap.
            if op.scrub.is_some() {
                self.finish_scrub_cycle();
            }
            return;
        };
        if count == 1 {
            let kind = op
                .user
                .map(|(k, _)| k)
                .or_else(|| {
                    op.parent
                        .map(|p| self.parents.get(p).expect("parent alive").0)
                })
                .expect("user spans carry a kind");
            let plan = self.plan_one(kind, start);
            let replacement = Op {
                user: op.user,
                outstanding: 0,
                phase2: plan.phase2,
                mark_rebuilt: plan.mark_rebuilt,
                piggyback: plan.piggyback,
                recon: None,
                background: false,
                parent: op.parent,
                span: op.span,
                aborted: false,
                lost_cycle: false,
                scrub: None,
                writing: false,
                phase_size: 0,
            };
            let new_id = self.insert_op(replacement);
            self.issue(new_id, &plan.phase1, now);
        } else {
            let parent_id = op.parent.expect("multi-unit spans have parents");
            let kind = self.parents.get(parent_id).expect("parent alive").0;
            let extent = crate::extent::plan_extent(&self.mapping, kind, start, count, self.view());
            // The aborted sub-plan is replaced by possibly several plans.
            self.parents.get_mut(parent_id).expect("parent alive").2 +=
                extent.plans.len() as u32 - 1;
            for (plan, span) in extent.plans.into_iter().zip(extent.spans) {
                let sub = Op {
                    user: None,
                    outstanding: 0,
                    phase2: plan.phase2,
                    mark_rebuilt: plan.mark_rebuilt,
                    piggyback: plan.piggyback,
                    recon: None,
                    background: false,
                    parent: Some(parent_id),
                    span: Some(span),
                    aborted: false,
                    lost_cycle: false,
                    scrub: None,
                    writing: false,
                    phase_size: 0,
                };
                let new_id = self.insert_op(sub);
                self.issue(new_id, &plan.phase1, now);
            }
        }
    }

    /// Plans one single-unit user access with the reusable scratch buffer
    /// (taken out for the call because the planner also borrows the fault
    /// state).
    fn plan_one(&mut self, kind: AccessKind, logical: u64) -> crate::plan::OpPlan {
        let mut units = std::mem::take(&mut self.scratch_units);
        let plan = plan_user_access_with(&self.mapping, kind, logical, self.view(), &mut units);
        self.scratch_units = units;
        plan
    }

    fn schedule_next_arrival(&mut self) {
        let Some(req) = self.source.next_request() else {
            return; // trace exhausted
        };
        if req.arrival >= self.arrival_cutoff {
            return;
        }
        self.queue.schedule(req.arrival, Event::Arrival);
        self.pending_arrival = Some(req);
    }

    fn on_arrival(&mut self, now: SimTime) {
        let req = self
            .pending_arrival
            .take()
            .expect("Arrival event without a pending request");
        debug_assert_eq!(req.arrival, now);
        self.requests_issued += 1;
        self.user_inflight += 1;
        if req.units == 1 {
            let plan = self.plan_one(req.kind, req.logical_unit);
            let op = Op {
                user: Some((req.kind, now)),
                outstanding: 0,
                phase2: plan.phase2,
                mark_rebuilt: plan.mark_rebuilt,
                piggyback: plan.piggyback,
                recon: None,
                background: false,
                parent: None,
                span: Some((req.logical_unit, 1)),
                aborted: false,
                lost_cycle: false,
                scrub: None,
                writing: false,
                phase_size: 0,
            };
            let op_id = self.insert_op(op);
            self.issue(op_id, &plan.phase1, now);
        } else {
            // Multi-unit access: the extent planner may merge fully covered
            // stripes into single large writes (criterion 5); the request
            // completes when every sub-plan does.
            let extent = crate::extent::plan_extent(
                &self.mapping,
                req.kind,
                req.logical_unit,
                req.units,
                self.view(),
            );
            let parent_id = self
                .parents
                .insert((req.kind, now, extent.plans.len() as u32));
            for (plan, span) in extent.plans.into_iter().zip(extent.spans) {
                let op = Op {
                    user: None,
                    outstanding: 0,
                    phase2: plan.phase2,
                    mark_rebuilt: plan.mark_rebuilt,
                    piggyback: plan.piggyback,
                    recon: None,
                    background: false,
                    parent: Some(parent_id),
                    span: Some(span),
                    aborted: false,
                    lost_cycle: false,
                    scrub: None,
                    writing: false,
                    phase_size: 0,
                };
                let op_id = self.insert_op(op);
                self.issue(op_id, &plan.phase1, now);
            }
        }
        self.schedule_next_arrival();
    }

    fn on_disk_done(&mut self, disk: u16, now: SimTime) {
        if self.disks[disk as usize].is_failed() {
            return; // stale completion event from before the failure
        }
        let (done, next) = self.disks[disk as usize].complete(now);
        if let Some(c) = next {
            self.queue.schedule(c.at, Event::DiskDone(disk));
        }
        let op_id = op_of_io(done.id);
        if let AccessOutcome::MediaError { .. } = done.outcome {
            self.on_media_error(op_id, disk, done.start_sector);
        }
        self.advance_op(op_id, now);
    }

    /// A read exhausted its retries on an unreadable sector. The sector is
    /// remapped (healed) so follow-up accesses succeed; whether data was
    /// *lost* depends on the stripe: with full redundancy the unit is
    /// recoverable from the surviving units and the issuing op simply
    /// retries, but if the stripe was already missing a unit (failed disk,
    /// not yet rebuilt) the error makes it unrecoverable.
    fn on_media_error(&mut self, op_id: u32, disk: u16, start_sector: u64) {
        self.disks[disk as usize].heal(start_sector, self.cfg.unit_sectors);
        let offset = start_sector / self.cfg.unit_sectors as u64;
        // Assess the stripe first: is it unrecoverable (this unit plus a
        // missing one elsewhere)? `None` for spare-region accesses (the
        // stripe is accounted via its home unit) and unmapped holes.
        let loss_info = if offset >= self.mapping.units_per_disk() {
            None
        } else {
            self.assess_media_error(disk, offset)
        };
        let unrecoverable = matches!(loss_info, Some((_, d, p)) if d + p >= 2);
        let op = self.ops.get_mut(op_id).expect("media error on unknown op");
        let is_scrub = op.scrub.is_some();
        let mut repaired = false;
        if is_scrub {
            // The patrol found a latent error. With full redundancy the
            // unit is recoverable from the units this cycle is already
            // reading: rewrite it (the heal above reallocated the
            // sector; the write models the repair I/O). On a stripe
            // already missing a unit there is nothing to rebuild from —
            // the loss is recorded below.
            if !unrecoverable {
                op.phase2.push(PlannedIo {
                    disk,
                    offset,
                    kind: IoKind::Write,
                });
                repaired = true;
            }
        } else if op.recon.is_some() {
            // A reconstruction cycle lost a survivor: the stripe under
            // rebuild is gone. The cycle resolves its offset as lost when
            // its remaining reads drain.
            op.lost_cycle = true;
        } else {
            // User (or piggyback) work: drain and retry — the healed
            // sector reads clean, modelling recovery from redundancy
            // (or fabricated data if the stripe was already degraded;
            // the loss is recorded below either way).
            op.aborted = true;
        }
        if is_scrub {
            let scrub = self.scrub.as_mut().expect("scrub op without scrubber");
            scrub.report.errors_found += 1;
            if repaired {
                scrub.report.errors_repaired += 1;
            }
        }
        if let Some((stripe, data, parity)) = loss_info {
            if data + parity > self.mapping.parity_units_per_stripe() {
                self.loss.record(LostStripe {
                    stripe,
                    data_units: data,
                    parity_units: parity,
                    cause: LossCause::MediaError { disk },
                });
            }
        }
    }

    /// Counts how many of the stripe's units are unavailable given a media
    /// error at `(disk, offset)`: the erroring unit itself plus anything
    /// on the failed, not-yet-rebuilt disk. Returns
    /// `(stripe, data unavailable, parity unavailable)`, or `None` off the
    /// mapped space.
    fn assess_media_error(&mut self, disk: u16, offset: u64) -> Option<(u64, u16, u16)> {
        let stripe = self.mapping.role_at(disk, offset).stripe()?;
        let (first, rebuilt) = match &self.fault {
            Fault::None => (None, None),
            Fault::Degraded { failed } => (Some(*failed), None),
            Fault::Rebuilding(r) => (Some(r.failed), Some(r.rebuilt.as_slice())),
        };
        let mut units = std::mem::take(&mut self.scratch_units);
        units.clear();
        self.mapping.stripe_units_into(stripe, &mut units);
        // Parity units are ordered last; a stripe survives as long as
        // its unavailable units stay within that parity count.
        let first_parity = units.len() - self.mapping.parity_units_per_stripe() as usize;
        let mut data = 0u16;
        let mut parity = 0u16;
        for (i, &u) in units.iter().enumerate() {
            let gone = (u.disk == disk && u.offset == offset)
                || (Some(u.disk) == first
                    && match rebuilt {
                        Some(r) => !r[u.offset as usize],
                        None => true,
                    });
            if gone {
                if i >= first_parity {
                    parity += 1;
                } else {
                    data += 1;
                }
            }
        }
        self.scratch_units = units;
        Some((stripe, data, parity))
    }

    fn advance_op(&mut self, op_id: u32, now: SimTime) {
        let op = self.ops.get_mut(op_id).expect("op vanished mid-flight");
        op.outstanding -= 1;
        if op.outstanding > 0 {
            return;
        }
        if op.aborted {
            self.retry_op(op_id, now);
            return;
        }
        if op.lost_cycle {
            // The cycle's stripe is unrecoverable: skip the rebuild write,
            // resolve the offset as lost so the sweep still terminates.
            let op = self.ops.remove(op_id).expect("op vanished at loss");
            if let Some(offset) = op.mark_rebuilt {
                self.mark_rebuilt(offset, now, RebuildCredit::Lost);
            }
            if let Some(rc) = op.recon {
                self.finish_recon_cycle(rc, now);
            }
            return;
        }
        if !op.phase2.is_empty() {
            // Phase 1 drained: note the read-phase boundary for cycles and
            // launch the writes.
            if let Some(rc) = &mut op.recon {
                rc.read_done = Some(now);
            }
            let ios = std::mem::take(&mut op.phase2);
            self.issue(op_id, &ios, now);
            return;
        }
        // Fully complete.
        let op = self.ops.remove(op_id).expect("op vanished at completion");
        if let Some((kind, arrival)) = op.user {
            self.user_inflight -= 1;
            if arrival >= self.measure_from {
                self.record_user_response(kind, now - arrival, now);
            }
        }
        if let Some(offset) = op.mark_rebuilt {
            let credit = if op.recon.is_none() {
                RebuildCredit::User
            } else {
                RebuildCredit::Sweep
            };
            self.mark_rebuilt(offset, now, credit);
        }
        if let Some(offset) = op.piggyback {
            self.spawn_piggyback_write(offset, now);
        }
        if let Some(parent_id) = op.parent {
            let done = {
                let entry = self
                    .parents
                    .get_mut(parent_id)
                    .expect("sub-plan without a parent");
                entry.2 -= 1;
                entry.2 == 0
            };
            if done {
                let (kind, arrival, _) = self.parents.remove(parent_id).expect("parent vanished");
                self.user_inflight -= 1;
                if arrival >= self.measure_from {
                    self.record_user_response(kind, now - arrival, now);
                }
            }
        }
        if let Some(rc) = op.recon {
            self.finish_recon_cycle(rc, now);
        }
        if let Some((_, started)) = op.scrub {
            self.finish_scrub_cycle();
            if P::ACTIVE {
                self.probe.latency(now, OpClass::Scrub, now - started);
            }
        }
    }

    /// Records one measured user response into the always-on [`OpStats`]
    /// and, when instrumentation is active, into the probe's per-class
    /// histograms.
    fn record_user_response(&mut self, kind: AccessKind, response: SimTime, now: SimTime) {
        match kind {
            AccessKind::Read => {
                self.stats.record_read(response);
                if P::ACTIVE {
                    self.probe.latency(now, OpClass::UserRead, response);
                }
            }
            AccessKind::Write => {
                self.stats.record_write(response);
                if P::ACTIVE {
                    self.probe.latency(now, OpClass::UserWrite, response);
                }
            }
        }
        self.requests_measured += 1;
    }

    fn insert_op(&mut self, op: Op) -> u32 {
        self.ops.insert(op)
    }

    fn issue(&mut self, op_id: u32, ios: &[PlannedIo], now: SimTime) {
        assert!(!ios.is_empty(), "op {op_id} issued an empty phase");
        let background = {
            let op = self.ops.get_mut(op_id).expect("issuing for unknown op");
            op.outstanding = ios.len() as u32;
            op.phase_size = ios.len() as u32;
            op.writing = ios.iter().any(|io| io.kind == IoKind::Write);
            op.background
        };
        let priority = if background {
            Priority::Background
        } else {
            Priority::User
        };
        for io in ios {
            if let Fault::Rebuilding(r) = &self.fault {
                debug_assert!(
                    r.spares.is_none() || io.disk != r.failed,
                    "distributed sparing issued io to the dead disk {}",
                    r.failed
                );
            }
            // An io id carries its op's slot in the low half and a
            // sequence number in the high half: completions decode the op
            // directly, and concurrent ios of slot-reusing ops still get
            // distinct disk-request ids.
            let io_id = ((self.io_seq as u64) << 32) | op_id as u64;
            self.io_seq = self.io_seq.wrapping_add(1);
            let request = DiskRequest::new(
                io_id,
                io.offset * self.cfg.unit_sectors as u64,
                self.cfg.unit_sectors,
                io.kind,
            )
            .with_priority(priority);
            if let Some(c) = self.disks[io.disk as usize].submit(now, request) {
                self.queue.schedule(c.at, Event::DiskDone(io.disk));
            }
        }
    }

    fn view(&self) -> FaultView<'_> {
        match &self.fault {
            Fault::None => FaultView::FaultFree,
            Fault::Degraded { failed } => FaultView::Degraded { failed: *failed },
            Fault::Rebuilding(r) => FaultView::Rebuilding {
                failed: r.failed,
                algorithm: r.algorithm,
                rebuilt: &r.rebuilt,
                spares: r.spares.as_ref(),
            },
        }
    }

    /// Resolves a replacement-disk offset: rebuilt (by the sweep or by
    /// user activity) or lost (its stripe proved unrecoverable). Either
    /// way it counts toward termination, so the sweep always finishes.
    fn mark_rebuilt(&mut self, offset: u64, now: SimTime, credit: RebuildCredit) {
        if let Fault::Rebuilding(r) = &mut self.fault {
            if !r.rebuilt[offset as usize] {
                r.rebuilt[offset as usize] = true;
                r.rebuilt_count += 1;
                match credit {
                    RebuildCredit::User => r.by_users += 1,
                    RebuildCredit::Sweep => r.swept += 1,
                    RebuildCredit::Lost => r.units_lost += 1,
                }
                // Sample the trajectory at each whole percent.
                let fraction = r.rebuilt_count as f64 / r.target as f64;
                let percent_now = (fraction * 100.0) as u32;
                let percent_prev = (r.progress.last().map_or(0.0, |&(_, f)| f) * 100.0) as u32;
                if r.progress.is_empty() || percent_now > percent_prev {
                    r.progress.push((now.as_secs_f64(), fraction));
                    if P::ACTIVE {
                        self.probe.recon_progress(now, r.rebuilt_count, r.target);
                    }
                }
                if r.rebuilt_count == r.target && r.finished.is_none() {
                    r.finished = Some(now);
                }
            }
        }
    }

    fn spawn_piggyback_write(&mut self, offset: u64, now: SimTime) {
        let target = match &self.fault {
            Fault::Rebuilding(r) if !r.rebuilt[offset as usize] => match &r.spares {
                Some(spares) => spares
                    .spare_of(offset)
                    .expect("piggybacked offsets are mapped"),
                None => UnitAddr::new(r.failed, offset),
            },
            _ => return, // already rebuilt meanwhile — skip the write
        };
        let io = PlannedIo {
            disk: target.disk,
            offset: target.offset,
            kind: IoKind::Write,
        };
        let op = Op {
            user: None,
            outstanding: 0,
            phase2: Vec::new(),
            mark_rebuilt: Some(offset),
            piggyback: None,
            recon: None,
            background: true,
            parent: None,
            span: None,
            aborted: false,
            lost_cycle: false,
            scrub: None,
            writing: false,
            phase_size: 0,
        };
        let op_id = self.insert_op(op);
        self.issue(op_id, &[io], now);
    }

    /// Claims the next unreconstructed offset and launches its cycle; the
    /// process goes idle when the sweep cursor reaches the end of the disk.
    fn start_recon_cycle(&mut self, process: usize, now: SimTime) {
        let (failed, offset, stripe) = {
            let r = match &mut self.fault {
                Fault::Rebuilding(r) => r,
                _ => return,
            };
            let units = r.rebuilt.len() as u64;
            let mut claimed = None;
            while r.cursor < units {
                let offset = r.cursor;
                r.cursor += 1;
                if r.rebuilt[offset as usize] {
                    continue;
                }
                match self.mapping.role_at(r.failed, offset).stripe() {
                    Some(stripe) => {
                        claimed = Some((r.failed, offset, stripe));
                        break;
                    }
                    None => continue, // unmapped hole
                }
            }
            match claimed {
                Some(c) => c,
                None => return, // sweep finished; stragglers arrive via user marks
            }
        };
        let mut units = std::mem::take(&mut self.scratch_units);
        let mut phase1 = std::mem::take(&mut self.scratch_ios);
        units.clear();
        phase1.clear();
        self.mapping.stripe_units_into(stripe, &mut units);
        phase1.extend(
            units
                .iter()
                .filter(|u| u.disk != failed)
                .map(|&u| PlannedIo {
                    disk: u.disk,
                    offset: u.offset,
                    kind: IoKind::Read,
                }),
        );
        let write_target = match &self.fault {
            Fault::Rebuilding(r) => match &r.spares {
                Some(spares) => {
                    let addr = spares.spare_of(offset).expect("claimed offsets are mapped");
                    (addr.disk, addr.offset)
                }
                None => (failed, offset),
            },
            _ => unreachable!("recon cycle outside rebuilding state"),
        };
        let phase2 = vec![PlannedIo {
            disk: write_target.0,
            offset: write_target.1,
            kind: IoKind::Write,
        }];
        let op = Op {
            user: None,
            outstanding: 0,
            phase2,
            mark_rebuilt: Some(offset),
            piggyback: None,
            recon: Some(ReconCycle {
                process,
                started: now,
                read_done: None,
            }),
            background: true,
            parent: None,
            span: None,
            aborted: false,
            lost_cycle: false,
            scrub: None,
            writing: false,
            phase_size: 0,
        };
        let op_id = self.insert_op(op);
        self.issue(op_id, &phase1, now);
        units.clear();
        phase1.clear();
        self.scratch_units = units;
        self.scratch_ios = phase1;
    }

    fn finish_recon_cycle(&mut self, rc: ReconCycle, now: SimTime) {
        let throttle = SimTime::from_us(self.cfg.recon_throttle_us);
        if P::ACTIVE {
            let read_done = rc.read_done.unwrap_or(now);
            self.probe
                .latency(now, OpClass::ReconRead, read_done - rc.started);
            self.probe
                .latency(now, OpClass::ReconWrite, now - read_done);
        }
        if let Fault::Rebuilding(r) = &mut self.fault {
            let read_done = rc.read_done.unwrap_or(now);
            let read_ms = (read_done - rc.started).as_ms_f64();
            let write_ms = (now - read_done).as_ms_f64();
            r.cycles.read_ms.push(read_ms);
            r.cycles.write_ms.push(write_ms);
            r.recent.push_back((read_ms, write_ms));
            if r.recent.len() > LAST_CYCLE_WINDOW {
                r.recent.pop_front();
            }
        }
        if throttle == SimTime::ZERO {
            self.start_recon_cycle(rc.process, now);
        } else {
            self.queue
                .schedule(now + throttle, Event::ReconKick(rc.process));
        }
    }

    // --- Patrol-read scrubbing -------------------------------------------

    /// Arms the scrub kick chain at run start (one self-perpetuating
    /// event; each kick schedules the next).
    fn schedule_first_scrub_kick(&mut self) {
        if self.scrub.is_some() {
            self.queue.schedule(
                SimTime::from_us(self.cfg.scrub.interval_us),
                Event::ScrubKick,
            );
        }
    }

    /// One tick of the patrol: back off if users are in flight, otherwise
    /// claim the next stripe for verification (bounded by the in-flight
    /// cycle cap), and schedule the next tick.
    fn on_scrub_kick(&mut self, now: SimTime) {
        if now >= self.arrival_cutoff {
            return; // run is draining: stop the kick chain so it can end
        }
        let Some(scrub) = &mut self.scrub else {
            return;
        };
        if self.user_inflight > 0 {
            // Not an idle window: yield to user traffic (the throttle that
            // bounds response-time degradation).
            scrub.report.backoffs += 1;
            self.queue.schedule(
                now + SimTime::from_us(self.cfg.scrub.backoff_us),
                Event::ScrubKick,
            );
            return;
        }
        let interval = SimTime::from_us(self.cfg.scrub.interval_us);
        self.queue.schedule(now + interval, Event::ScrubKick);
        if scrub.active >= self.cfg.scrub.max_outstanding {
            return; // at the outstanding-I/O cap: try again next tick
        }
        let stripes = self.mapping.stripes();
        if stripes == 0 {
            return;
        }
        let seq = scrub.cursor;
        scrub.cursor += 1;
        if scrub.cursor == stripes {
            scrub.cursor = 0;
            scrub.report.passes += 1;
        }
        let stripe = self.mapping.stripe_by_seq(seq);
        self.start_scrub_cycle(stripe, now);
    }

    /// Launches one verify cycle: background-priority reads of every
    /// available unit of `stripe`. Latent errors surface as media errors
    /// and are repaired in [`ArraySim::on_media_error`].
    fn start_scrub_cycle(&mut self, stripe: u64, now: SimTime) {
        let skip = match &self.fault {
            Fault::None => None,
            // The failed slot is unreadable (degraded / distributed
            // sparing) or partially garbage (replacement mid-rebuild):
            // the patrol verifies survivors only.
            Fault::Degraded { failed } => Some(*failed),
            Fault::Rebuilding(r) => Some(r.failed),
        };
        let mut units = std::mem::take(&mut self.scratch_units);
        let mut phase1 = std::mem::take(&mut self.scratch_ios);
        units.clear();
        phase1.clear();
        self.mapping.stripe_units_into(stripe, &mut units);
        phase1.extend(
            units
                .iter()
                .filter(|u| Some(u.disk) != skip)
                .map(|&u| PlannedIo {
                    disk: u.disk,
                    offset: u.offset,
                    kind: IoKind::Read,
                }),
        );
        if !phase1.is_empty() {
            let scrub = self.scrub.as_mut().expect("scrub cycle without scrubber");
            scrub.active += 1;
            scrub.report.units_read += phase1.len() as u64;
            let op = Op {
                user: None,
                outstanding: 0,
                phase2: Vec::new(),
                mark_rebuilt: None,
                piggyback: None,
                recon: None,
                background: true,
                parent: None,
                span: None,
                aborted: false,
                lost_cycle: false,
                scrub: Some((stripe, now)),
                writing: false,
                phase_size: 0,
            };
            let op_id = self.insert_op(op);
            self.issue(op_id, &phase1, now);
        }
        units.clear();
        phase1.clear();
        self.scratch_units = units;
        self.scratch_ios = phase1;
    }

    /// A verify cycle resolved (all reads landed, or the op was dropped by
    /// a mid-run disk failure): release its in-flight slot.
    fn finish_scrub_cycle(&mut self) {
        if let Some(scrub) = &mut self.scrub {
            scrub.active -= 1;
            scrub.report.stripes_scanned += 1;
        }
    }

    /// Unhealed latent defects over the mapped sectors of every live disk
    /// except the (first) failed slot — `None` when media faults are off.
    /// Under a dedicated replacement the failed slot is excluded too: the
    /// swapped-in drive re-derives the same defect pattern from its label,
    /// which would double-count the dead disk's defects.
    fn exposed_defects(&self, first_failed: Option<u16>) -> Option<u64> {
        if !self.cfg.media_faults.is_active() {
            return None;
        }
        let mapped_sectors = self.mapping.units_per_disk() * self.cfg.unit_sectors as u64;
        Some(
            self.disks
                .iter()
                .filter(|d| Some(d.label() as u16) != first_failed && !d.is_failed())
                .map(|d| d.count_defective(mapped_sectors))
                .sum(),
        )
    }

    // --- Crash (write-hole) injection ------------------------------------

    /// Power is cut: classify every in-flight operation, record the torn
    /// and dirty stripe sets, and end the run.
    fn on_crash(&mut self, now: SimTime) {
        let failed_disk = match &self.fault {
            Fault::None => None,
            Fault::Degraded { failed } => Some(*failed),
            Fault::Rebuilding(r) => Some(r.failed),
        };
        let mut torn: Vec<u64> = Vec::new();
        let mut dirty: Vec<u64> = Vec::new();
        for (_, op) in self.ops.iter() {
            // An op is *going to* write if a write phase is in flight now
            // or queued behind the current read phase; reconstruction and
            // piggyback ops write the rebuilt unit they carry.
            let writes = op.writing
                || op.phase2.iter().any(|io| io.kind == IoKind::Write)
                || op.mark_rebuilt.is_some();
            if !writes {
                continue;
            }
            // Torn: a write phase with some accesses landed and some not —
            // the stripe's parity update was half-applied. (An access
            // still in service at the cut did not land.)
            let landed = op.phase_size - op.outstanding;
            let is_torn = op.writing && landed > 0 && op.outstanding > 0;
            let mark = |list: &mut Vec<u64>| match (op.scrub, op.mark_rebuilt, op.span) {
                (Some((stripe, _)), _, _) => list.push(stripe),
                (None, Some(offset), _) => {
                    let failed = failed_disk.expect("rebuild writes imply a failed disk");
                    if let Some(stripe) = self.mapping.role_at(failed, offset).stripe() {
                        list.push(stripe);
                    }
                }
                (None, None, Some((start, count))) => {
                    for logical in start..start + count {
                        list.push(self.mapping.logical_to_stripe(logical).0);
                    }
                }
                (None, None, None) => {}
            };
            mark(&mut dirty);
            if is_torn {
                mark(&mut torn);
            }
        }
        torn.sort_unstable();
        torn.dedup();
        dirty.sort_unstable();
        dirty.dedup();
        self.crash = Some(CrashReport {
            at: now,
            torn_stripes: torn,
            dirty_stripes: dirty,
            failed_disk,
        });
        // Power is gone: every queued or in-service access is abandoned
        // where it stood. The run ends here.
        self.terminal_at = Some(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScrubConfig;
    use decluster_core::design::BlockDesign;
    use decluster_core::layout::{DeclusteredLayout, Raid5Layout};

    fn small_layout(g: u16) -> Arc<dyn ParityLayout> {
        Arc::new(DeclusteredLayout::new(BlockDesign::complete(5, g).unwrap()).unwrap())
    }

    fn tiny_cfg() -> ArrayConfig {
        ArrayConfig::scaled(40)
    }

    /// A builder pre-scaled like [`tiny_cfg`], for tests that tweak knobs.
    fn tiny_builder() -> crate::config::ArrayConfigBuilder {
        ArrayConfig::builder().cylinders(40)
    }

    fn sim(g: u16, spec: WorkloadSpec) -> ArraySim {
        ArraySim::new(small_layout(g), tiny_cfg(), spec, 1).unwrap()
    }

    #[test]
    fn fault_free_light_reads_have_low_response() {
        let s = sim(4, WorkloadSpec::all_reads(10.0));
        let report = s.run_for(SimTime::from_secs(60), SimTime::from_secs(5));
        assert!(report.requests_measured > 400, "{report:?}");
        // A lightly-loaded single random read averages ~22 ms service and
        // little queueing.
        assert!(
            report.ops.all.mean_ms() > 5.0 && report.ops.all.mean_ms() < 40.0,
            "mean {}",
            report.ops.all.mean_ms()
        );
        assert_eq!(
            report.ops.reads.count() + report.ops.writes.count(),
            report.ops.all.count()
        );
        assert_eq!(report.ops.writes.count(), 0);
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let read_report = sim(4, WorkloadSpec::all_reads(10.0))
            .run_for(SimTime::from_secs(60), SimTime::from_secs(5));
        let write_report = sim(4, WorkloadSpec::all_writes(10.0))
            .run_for(SimTime::from_secs(60), SimTime::from_secs(5));
        assert!(
            write_report.ops.all.mean_ms() > read_report.ops.all.mean_ms() * 1.5,
            "writes {} vs reads {}",
            write_report.ops.all.mean_ms(),
            read_report.ops.all.mean_ms()
        );
    }

    #[test]
    fn degraded_reads_slower_than_fault_free() {
        let ff = sim(4, WorkloadSpec::all_reads(20.0))
            .run_for(SimTime::from_secs(60), SimTime::from_secs(5));
        let mut s = sim(4, WorkloadSpec::all_reads(20.0));
        s.fail_disk(0).unwrap();
        let deg = s.run_for(SimTime::from_secs(60), SimTime::from_secs(5));
        assert!(
            deg.ops.all.mean_ms() > ff.ops.all.mean_ms(),
            "degraded {} vs fault-free {}",
            deg.ops.all.mean_ms(),
            ff.ops.all.mean_ms()
        );
    }

    #[test]
    fn reconstruction_completes_and_accounts_every_unit() {
        let mut s = sim(4, WorkloadSpec::half_and_half(10.0));
        s.fail_disk(2).unwrap();
        s.start_reconstruction(ReconOptions::new(ReconAlgorithm::Baseline))
            .unwrap();
        let report = s.run_until_reconstructed(SimTime::from_secs(100_000));
        assert!(report.reconstruction_time.is_some(), "{report:?}");
        assert_eq!(
            report.units_swept + report.units_by_users,
            report.units_total
        );
        // Baseline sends no user work to the replacement.
        assert_eq!(report.units_by_users, 0);
        assert!(report.cycles.read_ms.count() > 0);
        assert!(report.survivor_utilization > 0.0);
        assert!(report.replacement_utilization > 0.0);
    }

    #[test]
    fn user_writes_rebuild_some_units() {
        let mut s = sim(4, WorkloadSpec::all_writes(30.0));
        s.fail_disk(2).unwrap();
        s.start_reconstruction(ReconOptions::new(ReconAlgorithm::UserWrites))
            .unwrap();
        let report = s.run_until_reconstructed(SimTime::from_secs(100_000));
        assert!(report.reconstruction_time.is_some());
        assert!(
            report.units_by_users > 0,
            "direct writes should pre-rebuild units: {report:?}"
        );
        assert_eq!(
            report.units_swept + report.units_by_users,
            report.units_total
        );
    }

    #[test]
    fn parallel_reconstruction_is_faster() {
        let recon_time = |processes| {
            let mut s = sim(4, WorkloadSpec::half_and_half(10.0));
            s.fail_disk(1).unwrap();
            s.start_reconstruction(
                ReconOptions::new(ReconAlgorithm::Baseline).processes(processes),
            )
            .unwrap();
            s.run_until_reconstructed(SimTime::from_secs(100_000))
                .reconstruction_secs()
                .unwrap()
        };
        let single = recon_time(1);
        let eight = recon_time(8);
        assert!(
            eight < single * 0.5,
            "8-way {eight} not much faster than single {single}"
        );
    }

    #[test]
    fn throttled_reconstruction_is_slower_but_gentler() {
        let run = |throttle_us| {
            let cfg = tiny_builder().recon_throttle_us(throttle_us).build();
            let mut s =
                ArraySim::new(small_layout(4), cfg, WorkloadSpec::half_and_half(30.0), 1).unwrap();
            s.fail_disk(1).unwrap();
            s.start_reconstruction(ReconOptions::new(ReconAlgorithm::Baseline))
                .unwrap();
            s.run_until_reconstructed(SimTime::from_secs(200_000))
        };
        let fast = run(0);
        let slow = run(100_000); // 100 ms between cycles
        let (t_fast, t_slow) = (
            fast.reconstruction_secs().unwrap(),
            slow.reconstruction_secs().unwrap(),
        );
        assert!(
            t_slow > t_fast * 1.5,
            "throttle had no effect: {t_fast} vs {t_slow}"
        );
        assert!(
            slow.ops.all.mean_ms() < fast.ops.all.mean_ms(),
            "throttling should lower user response time: {} vs {}",
            slow.ops.all.mean_ms(),
            fast.ops.all.mean_ms()
        );
    }

    #[test]
    fn recon_limit_reports_incomplete() {
        let mut s = sim(4, WorkloadSpec::half_and_half(10.0));
        s.fail_disk(0).unwrap();
        s.start_reconstruction(ReconOptions::new(ReconAlgorithm::Baseline))
            .unwrap();
        let report = s.run_until_reconstructed(SimTime::from_ms(200));
        assert_eq!(report.reconstruction_time, None);
    }

    #[test]
    fn raid5_reconstruction_works() {
        let layout = Arc::new(Raid5Layout::new(5).unwrap());
        let mut s =
            ArraySim::new(layout, tiny_cfg(), WorkloadSpec::half_and_half(10.0), 1).unwrap();
        s.fail_disk(4).unwrap();
        s.start_reconstruction(ReconOptions::new(ReconAlgorithm::Redirect))
            .unwrap();
        let report = s.run_until_reconstructed(SimTime::from_secs(100_000));
        assert!(report.reconstruction_time.is_some());
        assert_eq!(
            report.units_swept + report.units_by_users,
            report.units_total
        );
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let run = || {
            let mut s = sim(4, WorkloadSpec::half_and_half(15.0));
            s.fail_disk(3).unwrap();
            s.start_reconstruction(ReconOptions::new(ReconAlgorithm::Redirect).processes(2))
                .unwrap();
            s.run_until_reconstructed(SimTime::from_secs(100_000))
        };
        let a = run();
        let b = run();
        assert_eq!(a.reconstruction_time, b.reconstruction_time);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.units_swept, b.units_swept);
    }

    #[test]
    fn recon_without_failure_is_rejected() {
        let err = sim(4, WorkloadSpec::all_reads(1.0))
            .start_reconstruction(ReconOptions::new(ReconAlgorithm::Baseline))
            .unwrap_err();
        assert!(err.to_string().contains("requires a failed disk"), "{err}");
    }

    #[test]
    fn double_immediate_failure_is_rejected() {
        // At most one disk may be failed *before* the run; further
        // failures are scheduled so their loss impact can be assessed.
        let mut s = sim(4, WorkloadSpec::all_reads(1.0));
        s.fail_disk(0).unwrap();
        let err = s.fail_disk(1).unwrap_err();
        assert!(err.to_string().contains("already failed"), "{err}");
        assert!(s.fail_disk(9).is_err(), "out-of-range disk accepted");
    }

    #[test]
    fn duplicate_scheduled_failure_is_rejected() {
        let mut s = sim(4, WorkloadSpec::all_reads(1.0));
        s.fail_disk_at(2, SimTime::from_secs(1)).unwrap();
        assert!(s.fail_disk_at(2, SimTime::from_secs(5)).is_err());
        assert!(s.fail_disk(2).is_err(), "disk 2 is already doomed");
        // A different disk is fine: that is the double-failure scenario.
        s.fail_disk(0).unwrap();
        assert!(s.fail_disk_at(0, SimTime::from_secs(9)).is_err());
    }

    #[test]
    fn second_failure_in_degraded_mode_ends_run_with_loss() {
        let mut s = sim(4, WorkloadSpec::all_reads(10.0));
        s.fail_disk(0).unwrap();
        let plan = FaultPlan::new().fail_at(1, SimTime::from_secs(20));
        s.inject_faults(&plan).unwrap();
        let mapping_stripes: Vec<u64> = {
            let m = s.mapping();
            (0..m.stripes())
                .filter(|&st| {
                    m.is_mapped(st) && {
                        let units = m.stripe_units(st);
                        units.iter().any(|u| u.disk == 0) && units.iter().any(|u| u.disk == 1)
                    }
                })
                .collect()
        };
        let report = s.run_for(SimTime::from_secs(60), SimTime::from_secs(5));
        assert_eq!(
            report.elapsed,
            SimTime::from_secs(20),
            "run ends at the loss"
        );
        assert_eq!(
            report.data_loss.second_failure,
            Some((1, SimTime::from_secs(20)))
        );
        let ids: Vec<u64> = report.data_loss.stripes.iter().map(|l| l.stripe).collect();
        assert_eq!(ids, mapping_stripes, "exact lost-stripe set");
        assert_eq!(report.data_loss.rebuilt_before_loss, None);
    }

    #[test]
    fn second_failure_mid_rebuild_truncates_loss_by_progress() {
        let mut s = sim(4, WorkloadSpec::all_reads(5.0));
        s.fail_disk(0).unwrap();
        s.start_reconstruction(ReconOptions::new(ReconAlgorithm::Baseline).processes(4))
            .unwrap();
        // First find how long an unmolested rebuild takes.
        let clean = {
            let mut c = sim(4, WorkloadSpec::all_reads(5.0));
            c.fail_disk(0).unwrap();
            c.start_reconstruction(ReconOptions::new(ReconAlgorithm::Baseline).processes(4))
                .unwrap();
            c.run_until_reconstructed(SimTime::from_secs(100_000))
        };
        let t = clean.reconstruction_secs().unwrap();
        let mid = SimTime::from_secs_f64(t * 0.5);
        s.inject_faults(&FaultPlan::new().fail_at(2, mid)).unwrap();
        let report = s.run_until_reconstructed(SimTime::from_secs(100_000));
        assert_eq!(report.reconstruction_time, None, "rebuild was cut short");
        let loss = &report.data_loss;
        assert_eq!(loss.second_failure, Some((2, mid)));
        let frac = loss.rebuilt_fraction_before_loss().unwrap();
        assert!(frac > 0.1 && frac < 0.9, "half-way failure, got {frac}");
        assert!(
            !loss.is_empty(),
            "mid-rebuild double failure must lose data"
        );
        // Fewer stripes lost than a no-rebuild double failure would lose.
        let worst = assess_second_failure(s_mapping(), Some(0), 2, None, None).len();
        assert!(
            loss.stripes.len() < worst,
            "{} !< {worst}",
            loss.stripes.len()
        );
    }

    /// Mapping of the standard `small_layout(4)` + `tiny_cfg()` sim, for
    /// assertions that need it after the sim was consumed.
    fn s_mapping() -> &'static ArrayMapping {
        use std::sync::OnceLock;
        static MAPPING: OnceLock<ArrayMapping> = OnceLock::new();
        MAPPING.get_or_init(|| {
            ArraySim::new(small_layout(4), tiny_cfg(), WorkloadSpec::all_reads(1.0), 1)
                .unwrap()
                .mapping
        })
    }

    #[test]
    fn second_failure_after_completion_loses_nothing() {
        // Acceptance criterion: once the replacement is fully rebuilt the
        // array tolerates a fresh failure with zero data loss.
        let clean = {
            let mut c = sim(4, WorkloadSpec::all_reads(5.0));
            c.fail_disk(0).unwrap();
            c.start_reconstruction(ReconOptions::new(ReconAlgorithm::Baseline).processes(4))
                .unwrap();
            c.run_until_reconstructed(SimTime::from_secs(100_000))
        };
        let t = clean.reconstruction_secs().unwrap();
        let mut s = sim(4, WorkloadSpec::all_reads(5.0));
        s.fail_disk(0).unwrap();
        s.start_reconstruction(ReconOptions::new(ReconAlgorithm::Baseline).processes(4))
            .unwrap();
        let late = SimTime::from_secs_f64(t * 1.5);
        s.inject_faults(&FaultPlan::new().fail_at(3, late)).unwrap();
        let report = s.run_until_reconstructed(SimTime::from_secs(100_000));
        assert!(
            report.reconstruction_time.is_some(),
            "rebuild completed first"
        );
        assert!(report.data_loss.is_empty(), "{:?}", report.data_loss);
        assert_eq!(report.data_loss.second_failure, Some((3, late)));
        assert_eq!(
            report.data_loss.rebuilt_before_loss,
            Some((report.units_total, report.units_total))
        );
    }

    #[test]
    fn second_failure_is_deterministic() {
        let run = || {
            let mut s = sim(4, WorkloadSpec::half_and_half(15.0));
            s.fail_disk(0).unwrap();
            s.start_reconstruction(ReconOptions::new(ReconAlgorithm::Redirect).processes(2))
                .unwrap();
            s.inject_faults(&FaultPlan::new().fail_at(1, SimTime::from_secs(30)))
                .unwrap();
            s.run_until_reconstructed(SimTime::from_secs(100_000))
        };
        let a = run();
        let b = run();
        assert_eq!(a.data_loss, b.data_loss);
        assert_eq!(a.units_swept, b.units_swept);
    }

    #[test]
    fn latent_media_errors_during_rebuild_are_accounted() {
        // A high latent-error rate guarantees some reconstruction cycles
        // hit unreadable survivors: those stripes are lost, the offsets
        // resolve as lost, and the accounting identity still holds.
        let cfg = tiny_builder()
            .media_faults(decluster_disk::MediaFaultConfig::none().with_latent_rate(2e-4))
            .build();
        let mut s =
            ArraySim::new(small_layout(4), cfg, WorkloadSpec::half_and_half(10.0), 1).unwrap();
        s.fail_disk(2).unwrap();
        s.start_reconstruction(ReconOptions::new(ReconAlgorithm::Baseline).processes(2))
            .unwrap();
        let report = s.run_until_reconstructed(SimTime::from_secs(100_000));
        assert!(report.reconstruction_time.is_some(), "sweep must terminate");
        assert_eq!(
            report.units_swept + report.units_by_users + report.units_lost,
            report.units_total
        );
        assert!(report.units_lost > 0, "2e-4 latent rate should lose units");
        assert!(!report.data_loss.is_empty());
        assert!(report
            .data_loss
            .stripes
            .iter()
            .all(|l| matches!(l.cause, LossCause::MediaError { .. })));
    }

    #[test]
    fn transient_errors_only_slow_the_array_down() {
        // Pure transient faults (no latent errors) retry and succeed:
        // nothing is lost, but response time goes up.
        let faulty_cfg = tiny_builder()
            .media_faults(decluster_disk::MediaFaultConfig::none().with_transient_rate(0.05))
            .build();
        let clean = sim(4, WorkloadSpec::all_reads(15.0))
            .run_for(SimTime::from_secs(40), SimTime::from_secs(4));
        let faulty = ArraySim::new(
            small_layout(4),
            faulty_cfg,
            WorkloadSpec::all_reads(15.0),
            1,
        )
        .unwrap()
        .run_for(SimTime::from_secs(40), SimTime::from_secs(4));
        assert!(faulty.data_loss.is_empty());
        assert_eq!(clean.requests_measured, faulty.requests_measured);
        assert!(
            faulty.ops.all.mean_ms() > clean.ops.all.mean_ms(),
            "retries should cost latency: {} vs {}",
            faulty.ops.all.mean_ms(),
            clean.ops.all.mean_ms()
        );
    }

    #[test]
    fn multi_unit_accesses_complete_and_measure_once() {
        let spec = WorkloadSpec::half_and_half(10.0).with_access_units(3);
        let s = ArraySim::new(small_layout(4), tiny_cfg(), spec, 1).unwrap();
        let report = s.run_for(SimTime::from_secs(30), SimTime::from_secs(3));
        assert!(report.requests_measured > 100);
        // One response per request, even though each request spans units.
        assert_eq!(
            report.ops.reads.count() + report.ops.writes.count(),
            report.ops.all.count()
        );
    }

    #[test]
    fn full_stripe_writes_beat_unit_writes_per_byte() {
        // At equal *byte* throughput, stripe-aligned 3-unit writes on a
        // G=4 layout cost G accesses per stripe instead of 12, so the
        // array sustains them with lower disk utilization.
        let unit_spec = WorkloadSpec::all_writes(30.0);
        let stripe_spec = WorkloadSpec::all_writes(10.0).with_access_units(3);
        let unit_run = ArraySim::new(small_layout(4), tiny_cfg(), unit_spec, 1)
            .unwrap()
            .run_for(SimTime::from_secs(30), SimTime::from_secs(3));
        let stripe_run = ArraySim::new(small_layout(4), tiny_cfg(), stripe_spec, 1)
            .unwrap()
            .run_for(SimTime::from_secs(30), SimTime::from_secs(3));
        assert!(
            stripe_run.mean_disk_utilization < unit_run.mean_disk_utilization * 0.7,
            "large writes should use far less disk time: {} vs {}",
            stripe_run.mean_disk_utilization,
            unit_run.mean_disk_utilization
        );
    }

    #[test]
    fn multi_unit_degraded_reconstruction_still_completes() {
        let spec = WorkloadSpec::half_and_half(10.0).with_access_units(3);
        let mut s = ArraySim::new(small_layout(4), tiny_cfg(), spec, 1).unwrap();
        s.fail_disk(2).unwrap();
        s.start_reconstruction(ReconOptions::new(ReconAlgorithm::UserWrites).processes(2))
            .unwrap();
        let report = s.run_until_reconstructed(SimTime::from_secs(100_000));
        assert!(report.reconstruction_time.is_some());
        assert_eq!(
            report.units_swept + report.units_by_users,
            report.units_total
        );
    }

    #[test]
    fn distributed_sparing_completes_without_a_replacement() {
        let cfg = tiny_builder().distributed_spares(900).build();
        let mut s =
            ArraySim::new(small_layout(4), cfg, WorkloadSpec::half_and_half(10.0), 1).unwrap();
        s.fail_disk(2).unwrap();
        s.start_reconstruction(
            ReconOptions::new(ReconAlgorithm::Redirect)
                .processes(4)
                .distributed(),
        )
        .unwrap();
        let report = s.run_until_reconstructed(SimTime::from_secs(100_000));
        assert!(report.reconstruction_time.is_some(), "{report:?}");
        assert_eq!(
            report.units_swept + report.units_by_users,
            report.units_total
        );
        // No replacement disk exists.
        assert_eq!(report.replacement_utilization, 0.0);
    }

    #[test]
    fn distributed_sparing_crossover_with_parallelism() {
        // The repair-organization trade-off: a dedicated replacement
        // absorbs reconstruction writes for free while its (sequential)
        // write stream keeps up, but it is a *single* disk — with enough
        // parallel processes it saturates while distributed sparing keeps
        // scaling by spreading writes over all survivors. On a wide
        // low-alpha array (21 disks, G = 4) the crossover sits between
        // 8- and 32-way.
        let recon = |distributed: bool, processes: usize| {
            let layout = decluster_core::layout::DeclusteredLayout::new(
                decluster_core::design::appendix::design_for_group_size(4).unwrap(),
            )
            .unwrap();
            let layout: Arc<dyn ParityLayout> = Arc::new(layout);
            let cfg = if distributed {
                tiny_builder().distributed_spares(200).build()
            } else {
                ArrayConfig::scaled(40)
            };
            let mut s = ArraySim::new(layout, cfg, WorkloadSpec::half_and_half(105.0), 1).unwrap();
            s.fail_disk(0).unwrap();
            if distributed {
                s.start_reconstruction(
                    ReconOptions::new(ReconAlgorithm::Baseline)
                        .processes(processes)
                        .distributed(),
                )
                .unwrap();
            } else {
                s.start_reconstruction(
                    ReconOptions::new(ReconAlgorithm::Baseline).processes(processes),
                )
                .unwrap();
            }
            s.run_until_reconstructed(SimTime::from_secs(100_000))
                .reconstruction_secs()
                .unwrap()
        };
        // Low parallelism: dedicated wins (its writes are free sequential
        // bandwidth; spare writes burden the survivors).
        assert!(recon(false, 8) < recon(true, 8));
        // High parallelism: the replacement saturates; distributed wins.
        assert!(recon(true, 32) < recon(false, 32));
    }

    #[test]
    fn distributed_sparing_serves_redirected_reads_from_spares() {
        // After rebuild completes mid-run, redirected reads hit spare
        // slots; correctness here is "the run completes and measures
        // responses" — address-level checks live in the planner tests.
        let cfg = tiny_builder().distributed_spares(900).build();
        let mut s = ArraySim::new(small_layout(4), cfg, WorkloadSpec::all_reads(20.0), 1).unwrap();
        s.fail_disk(0).unwrap();
        s.start_reconstruction(
            ReconOptions::new(ReconAlgorithm::RedirectPiggyback)
                .processes(8)
                .distributed(),
        )
        .unwrap();
        let report = s.run_until_reconstructed(SimTime::from_secs(100_000));
        assert!(report.reconstruction_time.is_some());
        assert!(report.ops.all.count() > 0);
    }

    #[test]
    fn distributed_sparing_needs_reservation() {
        let mut s =
            ArraySim::new(small_layout(4), tiny_cfg(), WorkloadSpec::all_reads(1.0), 1).unwrap();
        s.fail_disk(0).unwrap();
        let err = s
            .start_reconstruction(ReconOptions::new(ReconAlgorithm::Baseline).distributed())
            .unwrap_err();
        assert!(
            err.to_string().contains("requires reserved spare space"),
            "{err}"
        );
    }

    #[test]
    fn mid_run_failure_transitions_to_degraded() {
        // Fail disk 1 at t = 15 s of a 40 s run: every request completes
        // (retried if its accesses were lost) and the response-time mean
        // lands between the pure fault-free and pure degraded values.
        let spec = WorkloadSpec::all_reads(30.0);
        let fault_free = ArraySim::new(small_layout(4), tiny_cfg(), spec, 1)
            .unwrap()
            .run_for(SimTime::from_secs(40), SimTime::from_secs(4));
        let mut deg_sim = ArraySim::new(small_layout(4), tiny_cfg(), spec, 1).unwrap();
        deg_sim.fail_disk(1).unwrap();
        let degraded = deg_sim.run_for(SimTime::from_secs(40), SimTime::from_secs(4));
        let mut mid_sim = ArraySim::new(small_layout(4), tiny_cfg(), spec, 1).unwrap();
        mid_sim.fail_disk_at(1, SimTime::from_secs(15)).unwrap();
        let mid = mid_sim.run_for(SimTime::from_secs(40), SimTime::from_secs(4));
        // Same arrival stream in all three runs: every measured request
        // completed despite the transition.
        assert_eq!(mid.requests_measured, fault_free.requests_measured);
        assert!(
            mid.ops.all.mean_ms() >= fault_free.ops.all.mean_ms() * 0.95,
            "mid {} vs fault-free {}",
            mid.ops.all.mean_ms(),
            fault_free.ops.all.mean_ms()
        );
        assert!(
            mid.ops.all.mean_ms() <= degraded.ops.all.mean_ms() * 1.15,
            "mid {} vs degraded {}",
            mid.ops.all.mean_ms(),
            degraded.ops.all.mean_ms()
        );
    }

    #[test]
    fn mid_run_failure_with_multi_unit_requests() {
        let spec = WorkloadSpec::half_and_half(20.0).with_access_units(3);
        let mut s = ArraySim::new(small_layout(4), tiny_cfg(), spec, 1).unwrap();
        s.fail_disk_at(0, SimTime::from_secs(10)).unwrap();
        let report = s.run_for(SimTime::from_secs(30), SimTime::from_secs(2));
        assert!(report.requests_measured > 100);
        assert_eq!(
            report.ops.reads.count() + report.ops.writes.count(),
            report.ops.all.count()
        );
    }

    #[test]
    fn mid_run_failure_is_deterministic() {
        let run = || {
            let mut s = ArraySim::new(
                small_layout(4),
                tiny_cfg(),
                WorkloadSpec::half_and_half(25.0),
                3,
            )
            .unwrap();
            s.fail_disk_at(2, SimTime::from_secs(12)).unwrap();
            s.run_for(SimTime::from_secs(30), SimTime::from_secs(2))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fault_injection_is_rejected_after_run_start() {
        let mut s = sim(4, WorkloadSpec::all_reads(1.0));
        s.fail_disk(0).unwrap();
        let report = {
            let mut probe = sim(4, WorkloadSpec::all_reads(1.0));
            probe.started = true;
            assert!(probe.fail_disk(0).is_err());
            assert!(probe.fail_disk_at(1, SimTime::from_secs(1)).is_err());
            assert!(probe
                .inject_faults(&FaultPlan::new().fail_at(1, SimTime::from_secs(1)))
                .is_err());
            s.run_for(SimTime::from_secs(5), SimTime::from_secs(1))
        };
        assert!(report.data_loss.is_empty());
    }

    #[test]
    fn trace_replay_matches_synthetic_run() {
        // Recording the synthetic stream and replaying it must produce a
        // bit-identical simulation.
        use decluster_workload::trace::Trace;
        let spec = WorkloadSpec::half_and_half(20.0);
        let synthetic = ArraySim::new(small_layout(4), tiny_cfg(), spec, 1)
            .unwrap()
            .run_for(SimTime::from_secs(20), SimTime::from_secs(2));

        let mapping_units = ArraySim::new(small_layout(4), tiny_cfg(), spec, 1)
            .unwrap()
            .mapping()
            .data_units();
        let mut gen = decluster_workload::Workload::new(
            spec,
            mapping_units,
            tiny_cfg().seed ^ 1u64.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let trace = Trace::record(&mut gen, SimTime::from_secs(20));
        let replayed = ArraySim::with_trace(small_layout(4), tiny_cfg(), trace)
            .unwrap()
            .run_for(SimTime::from_secs(20), SimTime::from_secs(2));
        assert_eq!(synthetic.ops, replayed.ops);
        assert_eq!(synthetic.requests_measured, replayed.requests_measured);
    }

    #[test]
    fn trace_beyond_capacity_is_rejected() {
        use decluster_workload::trace::Trace;
        let trace: Trace = "0 R 999999999 1".parse().unwrap();
        let err = ArraySim::with_trace(small_layout(4), tiny_cfg(), trace);
        assert!(err.is_err());
    }

    #[test]
    fn hot_spot_workload_runs() {
        use decluster_workload::Locality;
        let spec = WorkloadSpec::half_and_half(20.0).with_locality(Locality::eighty_twenty());
        let report = ArraySim::new(small_layout(4), tiny_cfg(), spec, 1)
            .unwrap()
            .run_for(SimTime::from_secs(20), SimTime::from_secs(2));
        assert!(report.requests_measured > 200);
    }

    #[test]
    fn progress_trajectory_is_monotone_and_complete() {
        let mut s = sim(4, WorkloadSpec::half_and_half(10.0));
        s.fail_disk(1).unwrap();
        s.start_reconstruction(ReconOptions::new(ReconAlgorithm::Baseline).processes(2))
            .unwrap();
        let report = s.run_until_reconstructed(SimTime::from_secs(100_000));
        let progress = &report.progress;
        assert!(progress.len() >= 100, "only {} samples", progress.len());
        for pair in progress.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "time went backwards");
            assert!(pair[0].1 < pair[1].1, "fraction not increasing");
        }
        assert!((progress.last().unwrap().1 - 1.0).abs() < 1e-12);
        assert!((progress.last().unwrap().0 - report.reconstruction_secs().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn recon_priority_protects_user_response() {
        let run = |priority| {
            let cfg = tiny_builder().recon_priority(priority).build();
            let mut s =
                ArraySim::new(small_layout(4), cfg, WorkloadSpec::half_and_half(40.0), 1).unwrap();
            s.fail_disk(1).unwrap();
            s.start_reconstruction(ReconOptions::new(ReconAlgorithm::Baseline).processes(8))
                .unwrap();
            s.run_until_reconstructed(SimTime::from_secs(200_000))
        };
        let plain = run(false);
        let prioritized = run(true);
        assert!(
            prioritized.ops.all.mean_ms() < plain.ops.all.mean_ms(),
            "priority scheduling should lower user response: {} vs {}",
            prioritized.ops.all.mean_ms(),
            plain.ops.all.mean_ms()
        );
        assert!(
            prioritized.reconstruction_secs().unwrap() >= plain.reconstruction_secs().unwrap(),
            "priority scheduling cannot speed reconstruction up"
        );
    }

    #[test]
    #[should_panic(expected = "steady-state")]
    fn run_for_rejects_reconstruction() {
        let mut s = sim(4, WorkloadSpec::all_reads(1.0));
        s.fail_disk(0).unwrap();
        s.start_reconstruction(ReconOptions::new(ReconAlgorithm::Baseline))
            .unwrap();
        s.run_for(SimTime::from_secs(1), SimTime::ZERO);
    }

    fn latent_cfg(scrub: ScrubConfig) -> ArrayConfig {
        tiny_builder()
            .media_faults(decluster_disk::MediaFaultConfig::none().with_latent_rate(2e-4))
            .scrub(scrub)
            .build()
    }

    #[test]
    fn scrubber_heals_latent_defects() {
        let run = |scrub| {
            ArraySim::new(
                small_layout(4),
                latent_cfg(scrub),
                WorkloadSpec::all_reads(2.0),
                1,
            )
            .unwrap()
            .run_for(SimTime::from_secs(60), SimTime::from_secs(5))
        };
        let unscrubbed = run(ScrubConfig::off());
        assert!(unscrubbed.scrub.is_none(), "scrub off reports no scrub");
        let baseline = unscrubbed.exposed_defects.expect("faults are active");
        assert!(baseline > 0, "2e-4 latent rate should seed defects");

        let scrubbed = run(ScrubConfig::on().with_interval_us(500));
        let report = scrubbed.scrub.expect("scrub on reports the patrol");
        assert!(report.stripes_scanned > 0, "{report:?}");
        assert!(report.units_read >= report.stripes_scanned * 3);
        assert!(report.errors_found > 0, "patrol must hit latent defects");
        assert_eq!(
            report.errors_found, report.errors_repaired,
            "fault-free stripes always repair from parity"
        );
        let exposed = scrubbed.exposed_defects.expect("faults are active");
        assert!(
            exposed < baseline,
            "patrol should shrink exposure: {exposed} vs {baseline}"
        );
    }

    #[test]
    fn scrubber_backs_off_under_load_and_is_bounded() {
        let cfg = tiny_builder().scrub(ScrubConfig::on()).build();
        let report = ArraySim::new(small_layout(4), cfg, WorkloadSpec::half_and_half(60.0), 1)
            .unwrap()
            .run_for(SimTime::from_secs(30), SimTime::from_secs(3));
        let scrub = report.scrub.expect("scrub on");
        assert!(
            scrub.backoffs > 0,
            "a busy array must force backoffs: {scrub:?}"
        );
    }

    #[test]
    fn scrub_accounting_identity_holds_during_rebuild() {
        let cfg = latent_cfg(ScrubConfig::on().with_interval_us(500));
        let mut s =
            ArraySim::new(small_layout(4), cfg, WorkloadSpec::half_and_half(10.0), 1).unwrap();
        s.fail_disk(2).unwrap();
        s.start_reconstruction(ReconOptions::new(ReconAlgorithm::Baseline).processes(2))
            .unwrap();
        let report = s.run_until_reconstructed(SimTime::from_secs(100_000));
        assert!(report.reconstruction_time.is_some(), "sweep must terminate");
        assert_eq!(
            report.units_swept + report.units_by_users + report.units_lost,
            report.units_total,
            "scrub traffic must not leak into sweep accounting"
        );
        let scrub = report.scrub.expect("scrub on");
        assert!(scrub.stripes_scanned > 0);
    }

    #[test]
    fn crash_mid_run_classifies_torn_and_dirty_stripes() {
        // Near-saturating write load: the disk queues are never empty, so
        // the cut is guaranteed to land amid half-applied parity updates.
        let mut s = sim(4, WorkloadSpec::all_writes(55.0));
        s.inject_crash(&CrashPlan::at(SimTime::from_secs(5)))
            .unwrap();
        let report = s.run_for(SimTime::from_secs(60), SimTime::ZERO);
        let crash = report.crash.expect("planned crash must fire");
        assert_eq!(crash.at, SimTime::from_secs(5));
        assert_eq!(crash.failed_disk, None);
        assert!(
            !crash.dirty_stripes.is_empty(),
            "a saturating write load always has writes in flight"
        );
        for torn in &crash.torn_stripes {
            assert!(
                crash.dirty_stripes.contains(torn),
                "torn stripe {torn} missing from dirty set"
            );
        }
        // The cut ends the run: nothing arrives after it.
        assert!(report.elapsed <= SimTime::from_secs(5));
    }

    #[test]
    fn crash_during_rebuild_ends_the_run_with_a_report() {
        let mut s = sim(4, WorkloadSpec::half_and_half(10.0));
        s.fail_disk(1).unwrap();
        s.inject_crash(&CrashPlan::at(SimTime::from_secs(10)))
            .unwrap();
        s.start_reconstruction(ReconOptions::new(ReconAlgorithm::Baseline).processes(2))
            .unwrap();
        let report = s.run_until_reconstructed(SimTime::from_secs(100_000));
        let crash = report.crash.as_ref().expect("planned crash must fire");
        assert_eq!(crash.failed_disk, Some(1));
        assert!(
            report.reconstruction_time.is_none(),
            "power cut mid-rebuild leaves the sweep unfinished"
        );
        assert!(
            !crash.dirty_stripes.is_empty(),
            "rebuild writes were in flight"
        );
    }

    #[test]
    fn crash_injection_is_rejected_after_start_or_twice() {
        let mut s = sim(4, WorkloadSpec::all_reads(5.0));
        s.inject_crash(&CrashPlan::at(SimTime::from_secs(2)))
            .unwrap();
        assert!(
            s.inject_crash(&CrashPlan::at(SimTime::from_secs(3)))
                .is_err(),
            "double crash plan accepted"
        );
    }

    #[test]
    fn crash_report_feeds_recovery_end_to_end() {
        let mut s = sim(4, WorkloadSpec::all_writes(55.0));
        s.inject_crash(&CrashPlan::at(SimTime::from_secs(5)))
            .unwrap();
        let report = s.run_for(SimTime::from_secs(60), SimTime::ZERO);
        let crash = report.crash.expect("planned crash must fire");
        assert!(
            !crash.torn_stripes.is_empty(),
            "a saturated cut tears writes"
        );
        let full = crate::recovery::recover(
            small_layout(4),
            &tiny_cfg(),
            &crash,
            crate::report::RecoveryPolicy::FullResync,
        )
        .unwrap();
        let drl = crate::recovery::recover(
            small_layout(4),
            &tiny_cfg(),
            &crash,
            crate::report::RecoveryPolicy::DirtyRegionLog,
        )
        .unwrap();
        assert_eq!(full.torn_found, crash.torn_stripes.len() as u64);
        assert_eq!(drl.torn_found, full.torn_found);
        assert_eq!(drl.torn_repaired, drl.torn_found);
        assert!(drl.resync_units_read < full.resync_units_read);
    }

    #[test]
    fn scrub_off_is_byte_identical_to_no_scrub_config() {
        // The master switch must cost nothing: a disabled scrubber cannot
        // perturb the event sequence.
        let a = sim(4, WorkloadSpec::half_and_half(20.0))
            .run_for(SimTime::from_secs(20), SimTime::from_secs(2));
        let b = ArraySim::new(
            small_layout(4),
            tiny_builder()
                .scrub(ScrubConfig::off().with_interval_us(1))
                .build(),
            WorkloadSpec::half_and_half(20.0),
            1,
        )
        .unwrap()
        .run_for(SimTime::from_secs(20), SimTime::from_secs(2));
        assert_eq!(a.ops.all.mean_ms(), b.ops.all.mean_ms());
        assert_eq!(a.requests_measured, b.requests_measured);
    }

    #[test]
    fn recorder_probe_observes_without_perturbing() {
        use decluster_sim::Recorder;
        let spec = WorkloadSpec::half_and_half(20.0);
        let plain = sim(4, spec).run_for(SimTime::from_secs(30), SimTime::from_secs(3));
        let probed = ArraySim::new_probed(small_layout(4), tiny_cfg(), spec, 1, Recorder::new())
            .unwrap()
            .run_for(SimTime::from_secs(30), SimTime::from_secs(3));
        // Instrumentation is read-only: every simulated quantity matches.
        assert_eq!(plain.ops, probed.ops);
        assert_eq!(plain.events_processed, probed.events_processed);
        assert!(plain.observations.is_none());
        let obs = probed.observations.expect("recorder must report");
        let reads = obs.class(OpClass::UserRead).expect("all classes present");
        assert_eq!(reads.count(), probed.ops.reads.count());
        assert!((reads.mean_ms() - probed.ops.reads.mean_ms()).abs() < 1e-9);
        // One utilization timeline per disk, with samples in [0, 1].
        assert_eq!(obs.timelines.len(), 5);
        for tl in &obs.timelines {
            assert!(!tl.samples.is_empty(), "disk {} never sampled", tl.disk);
            for s in &tl.samples {
                assert!((0.0..=1.0).contains(&s.utilization));
            }
        }
    }

    #[test]
    fn recorder_probe_sees_recon_scrub_and_progress() {
        use decluster_sim::Recorder;
        let mut s = ArraySim::new_probed(
            small_layout(4),
            latent_cfg(ScrubConfig::on().with_interval_us(50_000)),
            WorkloadSpec::half_and_half(10.0),
            1,
            Recorder::new(),
        )
        .unwrap();
        s.fail_disk(1).unwrap();
        s.start_reconstruction(ReconOptions::new(ReconAlgorithm::Redirect).processes(2))
            .unwrap();
        let report = s.run_until_reconstructed(SimTime::from_secs(100_000));
        assert!(report.reconstruction_time.is_some());
        let obs = report.observations.expect("recorder must report");
        assert!(obs.class(OpClass::ReconRead).unwrap().count() > 0);
        assert!(obs.class(OpClass::ReconWrite).unwrap().count() > 0);
        assert!(obs.class(OpClass::Scrub).unwrap().count() > 0);
        assert_eq!(obs.recon_total, report.units_total);
        assert!(!obs.recon_progress.is_empty());
        for pair in obs.recon_progress.windows(2) {
            assert!(pair[0].t_us <= pair[1].t_us);
            assert!(pair[0].rebuilt < pair[1].rebuilt);
        }
        assert_eq!(
            obs.recon_progress.last().unwrap().rebuilt,
            report.units_total
        );
    }

    #[test]
    fn event_queue_never_regrows_mid_run() {
        // The scrubber's backoff re-arm (and injected faults, crashes,
        // recon kicks) must all fit in the capacity reserved before the
        // first event pops; regrowth mid-run would mean the reservation
        // undercounts an event source.
        let mut s = ArraySim::new(
            small_layout(4),
            latent_cfg(ScrubConfig::on().with_interval_us(20_000)),
            WorkloadSpec::half_and_half(30.0),
            1,
        )
        .unwrap();
        s.fail_disk_at(2, SimTime::from_secs(4)).unwrap();
        s.measure_from = SimTime::from_secs(1);
        s.arrival_cutoff = SimTime::from_secs(20);
        s.prepare_run();
        let reserved = s.queue.capacity();
        while let Some((now, event)) = s.queue.pop() {
            s.dispatch(now, event);
            if s.terminal_at.is_some() {
                break;
            }
        }
        assert!(s.events_processed > 1_000, "run was non-trivial");
        assert_eq!(
            s.queue.capacity(),
            reserved,
            "event heap regrew past its up-front reservation"
        );
    }
}
