//! Restart recovery after a power loss: closing the RAID-5 write hole.
//!
//! A crash ([`crate::CrashPlan`]) can catch a read-modify-write with some
//! of its writes on disk and some not — the stripe's parity no longer
//! matches its data, and a later disk failure would "reconstruct" garbage
//! from it. On restart the array must make every stripe consistent again
//! before it can serve degraded reads safely. This module replays that
//! recovery pass over the simulated disks, under either policy:
//!
//! * [`RecoveryPolicy::FullResync`] reads **every** mapped stripe,
//!   recomputing and rewriting parity where it disagrees. Correct with no
//!   logging at all, but the whole array is read — recovery time grows
//!   with capacity, not with damage.
//! * [`RecoveryPolicy::DirtyRegionLog`] reads only the stripes named by
//!   the dirty-region log — the stripes with writes in flight at the cut
//!   ([`CrashReport::dirty_stripes`]). Torn stripes are always a subset of
//!   dirty stripes (a torn write *was* in flight), so this makes the same
//!   repairs while reading a small, damage-proportional fraction.
//!
//! Recovery timing is simulated exactly: each disk serves its resync reads
//! and repair writes sequentially in scan order (seek and rotation
//! modelled by [`Disk`]), all disks run in parallel, and the pass is done
//! when the slowest disk finishes.

use crate::config::ArrayConfig;
use crate::report::{ConsistencyReport, CrashReport, RecoveryPolicy};
use decluster_core::error::Error;
use decluster_core::layout::{ArrayMapping, ParityLayout, UnitAddr};
use decluster_disk::{Disk, DiskRequest, IoKind};
use decluster_sim::SimTime;
use std::sync::Arc;

/// One disk's position in the offline recovery pass: a freshly
/// power-cycled drive serving its share of the scan back-to-back.
struct RecoveryDisk {
    disk: Disk,
    clock: SimTime,
    next_id: u64,
}

impl RecoveryDisk {
    fn new(cfg: &ArrayConfig, label: usize) -> RecoveryDisk {
        RecoveryDisk {
            disk: Disk::with_policy(cfg.geometry, label, cfg.sched),
            clock: SimTime::ZERO,
            next_id: 0,
        }
    }

    /// Serves one unit access immediately (the recovery pass keeps at most
    /// one access per disk in flight) and advances this disk's clock.
    fn access(&mut self, cfg: &ArrayConfig, offset: u64, kind: IoKind) {
        let request = DiskRequest::new(
            self.next_id,
            offset * cfg.unit_sectors as u64,
            cfg.unit_sectors,
            kind,
        );
        self.next_id += 1;
        let completion = self
            .disk
            .submit(self.clock, request)
            .expect("an idle disk starts service immediately");
        self.clock = completion.at;
        self.disk.complete(self.clock);
    }
}

/// Replays restart recovery from `crash` under `policy`, over fresh
/// (power-cycled) disks of the same geometry the crashed array had.
///
/// Units on [`CrashReport::failed_disk`] are neither read nor rewritten —
/// those stripes are already degraded and their redundancy is the
/// rebuild's problem, not the resync's. Every torn stripe the scan visits
/// counts as repaired: its parity is recomputed from the data units just
/// read and rewritten (one write), unless the parity unit sat on the
/// failed disk, in which case there is no stored parity left to disagree.
///
/// # Errors
///
/// Returns an error if the layout cannot map the configured disk size, or
/// if the policy is [`RecoveryPolicy::DirtyRegionLog`] and a torn stripe
/// is missing from the dirty log (a corrupt report — recovery would
/// silently leave an inconsistent stripe behind).
pub fn recover(
    layout: Arc<dyn ParityLayout>,
    cfg: &ArrayConfig,
    crash: &CrashReport,
    policy: RecoveryPolicy,
) -> Result<ConsistencyReport, Error> {
    let mapping = ArrayMapping::new(layout, cfg.data_units_per_disk())?;
    for torn in &crash.torn_stripes {
        if !crash.dirty_stripes.contains(torn) {
            return Err(Error::InvalidState {
                reason: format!("torn stripe {torn} is missing from the dirty-region log"),
            });
        }
    }
    let mut disks: Vec<RecoveryDisk> = (0..mapping.disks())
        .map(|d| RecoveryDisk::new(cfg, d as usize))
        .collect();

    let stripes: Vec<u64> = match policy {
        RecoveryPolicy::FullResync => (0..mapping.stripes())
            .map(|seq| mapping.stripe_by_seq(seq))
            .collect(),
        RecoveryPolicy::DirtyRegionLog => crash.dirty_stripes.clone(),
    };

    let mut report = ConsistencyReport {
        policy,
        stripes_checked: 0,
        torn_found: 0,
        torn_repaired: 0,
        resync_units_read: 0,
        resync_units_written: 0,
        recovery_secs: 0.0,
    };
    let mut units: Vec<UnitAddr> = Vec::new();
    let alive = |u: &UnitAddr| Some(u.disk) != crash.failed_disk;
    for &stripe in &stripes {
        units.clear();
        mapping.stripe_units_into(stripe, &mut units);
        report.stripes_checked += 1;
        for u in units.iter().filter(|u| alive(u)) {
            disks[u.disk as usize].access(cfg, u.offset, IoKind::Read);
            report.resync_units_read += 1;
        }
        if crash.torn_stripes.binary_search(&stripe).is_ok() {
            report.torn_found += 1;
            // stripe_units orders parity last; every live parity unit is
            // recomputed and rewritten (one write for XOR, two for P+Q).
            let first_parity = units.len() - mapping.parity_units_per_stripe() as usize;
            for parity in units[first_parity..].iter().filter(|u| alive(u)) {
                disks[parity.disk as usize].access(cfg, parity.offset, IoKind::Write);
                report.resync_units_written += 1;
            }
            report.torn_repaired += 1;
        }
    }
    report.recovery_secs = disks
        .iter()
        .map(|d| d.clock.as_secs_f64())
        .fold(0.0, f64::max);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decluster_core::design::BlockDesign;
    use decluster_core::layout::DeclusteredLayout;

    fn small_layout() -> Arc<dyn ParityLayout> {
        Arc::new(DeclusteredLayout::new(BlockDesign::complete(5, 4).unwrap()).unwrap())
    }

    fn crash(torn: Vec<u64>, dirty: Vec<u64>) -> CrashReport {
        CrashReport {
            at: SimTime::from_secs(1),
            torn_stripes: torn,
            dirty_stripes: dirty,
            failed_disk: None,
        }
    }

    #[test]
    fn full_resync_scans_every_stripe() {
        let cfg = ArrayConfig::scaled(40);
        let mapping = ArrayMapping::new(small_layout(), cfg.units_per_disk()).unwrap();
        let report = recover(
            small_layout(),
            &cfg,
            &crash(vec![3], vec![3, 9]),
            RecoveryPolicy::FullResync,
        )
        .unwrap();
        assert_eq!(report.stripes_checked, mapping.stripes());
        assert_eq!(report.torn_found, 1);
        assert_eq!(report.torn_repaired, 1);
        assert_eq!(report.resync_units_written, 1);
        // Every unit of every stripe is read.
        assert_eq!(report.resync_units_read, mapping.stripes() * 4);
        assert!(report.recovery_secs > 0.0);
    }

    #[test]
    fn dirty_region_log_scans_only_the_log() {
        let cfg = ArrayConfig::scaled(40);
        let report = recover(
            small_layout(),
            &cfg,
            &crash(vec![3], vec![3, 9]),
            RecoveryPolicy::DirtyRegionLog,
        )
        .unwrap();
        assert_eq!(report.stripes_checked, 2);
        assert_eq!(report.resync_units_read, 8);
        assert_eq!(report.torn_found, 1);
        assert_eq!(report.torn_repaired, 1);
    }

    #[test]
    fn drl_is_strictly_cheaper_and_equally_thorough() {
        let cfg = ArrayConfig::scaled(40);
        let c = crash(vec![0, 7], vec![0, 5, 7]);
        let full = recover(small_layout(), &cfg, &c, RecoveryPolicy::FullResync).unwrap();
        let drl = recover(small_layout(), &cfg, &c, RecoveryPolicy::DirtyRegionLog).unwrap();
        assert_eq!(full.torn_repaired, drl.torn_repaired);
        assert!(drl.resync_units_read < full.resync_units_read);
        assert!(drl.recovery_secs < full.recovery_secs);
    }

    #[test]
    fn torn_outside_the_log_is_rejected() {
        let cfg = ArrayConfig::scaled(40);
        let err = recover(
            small_layout(),
            &cfg,
            &crash(vec![3], vec![9]),
            RecoveryPolicy::DirtyRegionLog,
        );
        assert!(err.is_err());
    }

    #[test]
    fn failed_disk_units_are_skipped() {
        let cfg = ArrayConfig::scaled(40);
        let mut c = crash(vec![3], vec![3]);
        c.failed_disk = Some(0);
        let report = recover(small_layout(), &cfg, &c, RecoveryPolicy::DirtyRegionLog).unwrap();
        // At most 4 units per stripe; with a failed disk, possibly fewer.
        assert!(report.resync_units_read <= 4);
        assert_eq!(report.torn_repaired, 1);
    }

    #[test]
    fn clean_crash_recovers_instantly_under_drl() {
        let cfg = ArrayConfig::scaled(40);
        let report = recover(
            small_layout(),
            &cfg,
            &crash(vec![], vec![]),
            RecoveryPolicy::DirtyRegionLog,
        )
        .unwrap();
        assert_eq!(report.stripes_checked, 0);
        assert_eq!(report.resync_units_read, 0);
        assert_eq!(report.recovery_secs, 0.0);
    }
}
