//! Multi-unit (extent) accesses and the large-write optimization.
//!
//! The paper's layout criterion 5: because contiguous user data is
//! allocated to stripe units in parity-stripe order, a write covering the
//! *entire data portion* of a parity stripe (aligned to a stripe boundary)
//! needs no pre-reads — the new parity depends only on the new data, so
//! the whole stripe goes out as `G` parallel writes instead of `4·(G−1)`
//! read-modify-write accesses. Declustered layouts enjoy this with
//! *smaller* writes than RAID 5 because their stripes are narrower
//! (Section 6).
//!
//! [`plan_extent`] decomposes an arbitrary `[start, start+count)` extent
//! into plans: full-stripe segments use the optimization; ragged head and
//! tail units fall back to the single-unit planner, which also handles
//! every degraded/rebuilding case.

use crate::plan::{plan_user_access, FaultView, OpPlan, PlannedIo};
use decluster_core::layout::ArrayMapping;
use decluster_disk::IoKind;
use decluster_workload::AccessKind;

/// The decomposition of an extent access.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExtentPlan {
    /// Independently executable plans, in address order.
    pub plans: Vec<OpPlan>,
    /// The `(first logical unit, unit count)` each plan covers, aligned
    /// with `plans`.
    pub spans: Vec<(u64, u64)>,
    /// How many plans were full-stripe writes (criterion-5 hits).
    pub full_stripe_writes: usize,
}

impl ExtentPlan {
    /// Total disk accesses across all plans.
    pub fn accesses(&self) -> usize {
        self.plans.iter().map(OpPlan::accesses).sum()
    }
}

/// Plans a `count`-unit access starting at logical unit `start`.
///
/// Reads decompose into per-unit plans (one access each fault-free;
/// on-the-fly fan-out when degraded). Writes use the large-write
/// optimization for every fully covered, stripe-aligned stripe while the
/// array is fault-free and the stripe is untouched by the failure;
/// everything else decomposes to single-unit plans.
///
/// # Panics
///
/// Panics if the extent is empty or runs past the mapping's capacity.
pub fn plan_extent(
    mapping: &ArrayMapping,
    kind: AccessKind,
    start: u64,
    count: u64,
    fault: FaultView<'_>,
) -> ExtentPlan {
    assert!(count > 0, "empty extent");
    assert!(
        start + count <= mapping.data_units(),
        "extent [{start}, +{count}) beyond capacity {}",
        mapping.data_units()
    );
    let d = mapping.layout().data_units_per_stripe() as u64;
    let mut plan = ExtentPlan::default();
    let mut logical = start;
    let end = start + count;
    while logical < end {
        let within = logical % d;
        let stripe_fully_covered = kind == AccessKind::Write && within == 0 && end - logical >= d;
        if stripe_fully_covered {
            if let Some(full) = plan_full_stripe_write(mapping, logical, fault) {
                plan.plans.push(full);
                plan.spans.push((logical, d));
                plan.full_stripe_writes += 1;
                logical += d;
                continue;
            }
        }
        plan.plans
            .push(plan_user_access(mapping, kind, logical, fault));
        plan.spans.push((logical, 1));
        logical += 1;
    }
    plan
}

/// The criterion-5 plan: `G` parallel writes, no pre-reads. Only valid
/// while every unit of the stripe is on a healthy (or rebuilt) disk;
/// returns `None` otherwise so the caller falls back to per-unit plans.
fn plan_full_stripe_write(
    mapping: &ArrayMapping,
    first_logical: u64,
    fault: FaultView<'_>,
) -> Option<OpPlan> {
    let (stripe, index) = mapping.logical_to_stripe(first_logical);
    debug_assert_eq!(index, 0);
    let units = mapping.stripe_units(stripe);
    let healthy = match fault {
        FaultView::FaultFree => true,
        FaultView::Degraded { failed } => units.iter().all(|u| u.disk != failed),
        FaultView::Rebuilding {
            failed, rebuilt, ..
        } => units
            .iter()
            .all(|u| u.disk != failed || rebuilt[u.offset as usize]),
    };
    if !healthy {
        return None;
    }
    Some(OpPlan {
        phase1: units
            .iter()
            .map(|&u| {
                let live = fault.live_location(u);
                PlannedIo {
                    disk: live.disk,
                    offset: live.offset,
                    kind: IoKind::Write,
                }
            })
            .collect(),
        ..OpPlan::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use decluster_core::design::BlockDesign;
    use decluster_core::layout::{DeclusteredLayout, ParityLayout, Raid5Layout};
    use std::sync::Arc;

    fn mapping(g: u16) -> ArrayMapping {
        let layout: Arc<dyn ParityLayout> =
            Arc::new(DeclusteredLayout::new(BlockDesign::complete(5, g).unwrap()).unwrap());
        ArrayMapping::new(layout, 200).unwrap()
    }

    #[test]
    fn aligned_full_stripe_write_needs_no_prereads() {
        let m = mapping(4); // 3 data units per stripe
        let p = plan_extent(&m, AccessKind::Write, 0, 3, FaultView::FaultFree);
        assert_eq!(p.full_stripe_writes, 1);
        assert_eq!(p.plans.len(), 1);
        // G = 4 parallel writes, zero reads.
        assert_eq!(p.accesses(), 4);
        assert!(p.plans[0].phase1.iter().all(|io| io.kind == IoKind::Write));
        assert!(p.plans[0].phase2.is_empty());
    }

    #[test]
    fn optimization_beats_rmw_by_the_papers_factor() {
        // Full-stripe write: G accesses. Same units via RMW: 4·(G−1).
        let m = mapping(4);
        let optimized = plan_extent(&m, AccessKind::Write, 0, 3, FaultView::FaultFree);
        let unit_by_unit: usize = (0..3)
            .map(|l| plan_user_access(&m, AccessKind::Write, l, FaultView::FaultFree).accesses())
            .sum();
        assert_eq!(optimized.accesses(), 4);
        assert_eq!(unit_by_unit, 12);
    }

    #[test]
    fn unaligned_extent_splits_head_and_tail() {
        let m = mapping(4);
        // Units 1..7: head 1,2 (partial), full stripe 3..6, tail 6.
        let p = plan_extent(&m, AccessKind::Write, 1, 6, FaultView::FaultFree);
        assert_eq!(p.full_stripe_writes, 1);
        // 2 head RMWs + 1 full stripe + 1 tail RMW.
        assert_eq!(p.plans.len(), 4);
    }

    #[test]
    fn extent_shorter_than_stripe_is_all_rmw() {
        let m = mapping(4);
        let p = plan_extent(&m, AccessKind::Write, 0, 2, FaultView::FaultFree);
        assert_eq!(p.full_stripe_writes, 0);
        assert_eq!(p.plans.len(), 2);
    }

    #[test]
    fn reads_decompose_per_unit() {
        let m = mapping(4);
        let p = plan_extent(&m, AccessKind::Read, 0, 6, FaultView::FaultFree);
        assert_eq!(p.full_stripe_writes, 0);
        assert_eq!(p.plans.len(), 6);
        assert_eq!(p.accesses(), 6);
    }

    #[test]
    fn degraded_stripe_falls_back_to_folding() {
        let m = mapping(4);
        // Find a stripe with a unit on disk 0 — its full-stripe write must
        // not use the optimization while disk 0 is down.
        let (stripe, _) = m.logical_to_stripe(0);
        let has_disk0 = m.stripe_units(stripe).iter().any(|u| u.disk == 0);
        assert!(has_disk0, "stripe 0 of the complete design touches disk 0");
        let p = plan_extent(
            &m,
            AccessKind::Write,
            0,
            3,
            FaultView::Degraded { failed: 0 },
        );
        assert_eq!(p.full_stripe_writes, 0);
        assert_eq!(p.plans.len(), 3);
        // And no plan touches the dead disk.
        assert!(p
            .plans
            .iter()
            .flat_map(|pl| pl.phase1.iter().chain(&pl.phase2))
            .all(|io| io.disk != 0));
    }

    #[test]
    fn degraded_stripe_off_the_failed_disk_still_optimizes() {
        let m = mapping(4);
        // Locate a stripe avoiding disk 0 (C=5 > G=4, so one exists).
        let mut aligned = None;
        for seq in 0.. {
            if seq >= m.stripes() {
                break;
            }
            let stripe = m.stripe_by_seq(seq);
            if m.stripe_units(stripe).iter().all(|u| u.disk != 0) {
                aligned = m.stripe_to_logical(stripe, 0);
                break;
            }
        }
        let start = aligned.expect("some stripe avoids disk 0");
        let p = plan_extent(
            &m,
            AccessKind::Write,
            start,
            3,
            FaultView::Degraded { failed: 0 },
        );
        assert_eq!(p.full_stripe_writes, 1);
        assert_eq!(p.accesses(), 4);
    }

    #[test]
    fn raid5_needs_full_width_for_the_optimization() {
        // The paper's point: declustered stripes are narrower, so the
        // optimization kicks in with smaller writes than RAID 5 needs.
        let raid5 = ArrayMapping::new(Arc::new(Raid5Layout::new(5).unwrap()), 200).unwrap();
        let m4 = mapping(4);
        // A 3-unit aligned write: full stripe for G=4, partial for RAID 5.
        let decl = plan_extent(&m4, AccessKind::Write, 0, 3, FaultView::FaultFree);
        let r5 = plan_extent(&raid5, AccessKind::Write, 0, 3, FaultView::FaultFree);
        assert_eq!(decl.full_stripe_writes, 1);
        assert_eq!(r5.full_stripe_writes, 0);
        assert!(decl.accesses() < r5.accesses());
        // RAID 5 needs 4 aligned units.
        let r5_full = plan_extent(&raid5, AccessKind::Write, 0, 4, FaultView::FaultFree);
        assert_eq!(r5_full.full_stripe_writes, 1);
        assert_eq!(r5_full.accesses(), 5);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn overrun_panics() {
        let m = mapping(4);
        plan_extent(
            &m,
            AccessKind::Read,
            m.data_units() - 1,
            2,
            FaultView::FaultFree,
        );
    }

    #[test]
    #[should_panic(expected = "empty extent")]
    fn empty_extent_panics() {
        let m = mapping(4);
        plan_extent(&m, AccessKind::Read, 0, 0, FaultView::FaultFree);
    }
}
