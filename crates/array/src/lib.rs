//! The RAID striping driver: a disk-accurate simulation of a redundant
//! array in fault-free, degraded, and reconstructing modes.
//!
//! This crate is the middle layer of the `decluster` reproduction of
//! Holland & Gibson (ASPLOS 1992) — the role the Sprite striping driver
//! plays inside `raidSim`. It decomposes user accesses into disk accesses
//! under every operating mode the paper studies:
//!
//! * **fault-free** — reads are one access; writes are the four-access
//!   read-modify-write (or the three-access `G = 3` optimization the paper
//!   discusses for α = 0.1);
//! * **degraded** (disk failed, no replacement) — reads of lost data
//!   reconstruct on the fly from the stripe's survivors; writes of lost
//!   data fold into the parity unit; writes whose parity is lost skip the
//!   parity update entirely;
//! * **reconstructing** — one or more background processes sweep the
//!   replacement disk, each cycle reading the stripe's `G−1` surviving
//!   units and writing the rebuilt unit, under any of the paper's four
//!   algorithms ([`ReconAlgorithm`]): baseline, user-writes, redirection
//!   of reads, and redirection plus piggybacking.
//!
//! Timing comes from the positional disk model in `decluster-disk`; the
//! layout comes from `decluster-core`. A separate *data plane*
//! ([`data::DataArray`]) runs the same decomposition rules over real byte
//! buffers with XOR parity so reconstruction correctness is tested
//! independently of timing.
//!
//! # Examples
//!
//! ```
//! use decluster_array::{ArrayConfig, ArraySim, ReconAlgorithm, ReconOptions};
//! use decluster_core::design::BlockDesign;
//! use decluster_core::layout::DeclusteredLayout;
//! use decluster_sim::SimTime;
//! use decluster_workload::WorkloadSpec;
//! use std::sync::Arc;
//!
//! // A small declustered array under a light half-read workload.
//! let layout = Arc::new(DeclusteredLayout::new(BlockDesign::complete(5, 4)?)?);
//! let cfg = ArrayConfig::builder().cylinders(40).build(); // mini-disks for a fast test
//! let mut sim = ArraySim::new(layout, cfg, WorkloadSpec::half_and_half(20.0), 1)?;
//! sim.fail_disk(0)?;
//! sim.start_reconstruction(ReconOptions::new(ReconAlgorithm::Baseline))?;
//! let report = sim.run_until_reconstructed(SimTime::from_secs(10_000));
//! assert!(report.reconstruction_time.is_some());
//! assert!(report.data_loss.is_empty()); // single failure: nothing lost
//! println!("mean user response {:.1} ms", report.ops.all.mean_ms());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod data;
pub mod extent;
pub mod gf;
pub mod loss;
pub mod plan;
pub mod recovery;
pub mod report;
pub mod sim;
pub mod slab;
pub mod spare;

pub use config::{ArrayConfig, ArrayConfigBuilder, ScrubConfig};
pub use decluster_core::recon::ReconAlgorithm;
pub use recovery::recover;
pub use report::{
    ConsistencyReport, CrashReport, DataLossReport, LossCause, LostStripe, OpStats, ReconReport,
    RecoveryPolicy, RunReport, ScrubReport,
};
pub use sim::{ArraySim, CrashPlan, FaultPlan, ReconOptions};
