//! The data plane: the striping driver's semantics executed over real
//! bytes with XOR parity — and, for P+Q layouts, a GF(256)
//! Reed–Solomon Q unit that survives any two simultaneous failures.
//!
//! The timing simulator ([`crate::sim::ArraySim`]) deliberately carries no
//! data. This module re-implements the same decomposition rules —
//! read-modify-write, parity folding, on-the-fly reconstruction, direct
//! writes to the replacement, the reconstruction sweep — over actual
//! buffers, so that the *algebra* of the declustered layout (does
//! reconstruction really recover every byte? does folding keep parity
//! consistent?) is proven separately from performance. The layout's
//! [`ParityLayout::parity_units_per_stripe`] sets the fault budget:
//! up to that many disks may be failed at once, and every decode path
//! (degraded read, degraded write, the reconstruction sweep) recovers
//! through whichever parities survive.
//!
//! # Examples
//!
//! ```
//! use decluster_array::data::DataArray;
//! use decluster_core::design::BlockDesign;
//! use decluster_core::layout::DeclusteredLayout;
//! use std::sync::Arc;
//!
//! let layout = Arc::new(DeclusteredLayout::new(BlockDesign::complete(5, 4)?)?);
//! let mut array = DataArray::new(layout, 32, 8)?;
//! array.write(0, &[7; 8]);
//! array.fail_disk(array.locate(0).disk)?;  // lose the disk holding unit 0
//! assert_eq!(array.read(0), vec![7; 8]);   // rebuilt on the fly
//! array.replace_disk()?;
//! array.reconstruct_all()?;
//! assert_eq!(array.read(0), vec![7; 8]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::gf;
use decluster_core::error::Error;
use decluster_core::layout::{ArrayMapping, ParityLayout, UnitAddr};
use std::sync::Arc;

/// One failed disk and, once physically replaced, its rebuild bitmap.
#[derive(Debug, Clone)]
struct FailedDisk {
    disk: u16,
    /// Present once a replacement has been installed.
    rebuilt: Option<Vec<bool>>,
}

/// A byte-accurate model of the array.
#[derive(Debug, Clone)]
pub struct DataArray {
    mapping: ArrayMapping,
    unit_bytes: usize,
    /// Disk contents, `disks[d][offset * unit_bytes ..]`.
    disks: Vec<Vec<u8>>,
    /// Concurrently failed disks, at most the layout's parity count.
    failed: Vec<FailedDisk>,
}

impl DataArray {
    /// Creates a zero-filled array over `layout` with `units_per_disk`
    /// units of `unit_bytes` bytes each.
    ///
    /// # Errors
    ///
    /// Returns an error if the layout cannot map the disk size.
    pub fn new(
        layout: Arc<dyn ParityLayout>,
        units_per_disk: u64,
        unit_bytes: usize,
    ) -> Result<DataArray, Error> {
        let mapping = ArrayMapping::new(layout, units_per_disk)?;
        let disks = (0..mapping.disks())
            .map(|_| vec![0u8; units_per_disk as usize * unit_bytes])
            .collect();
        Ok(DataArray {
            mapping,
            unit_bytes,
            disks,
            failed: Vec::new(),
        })
    }

    /// Logical data units addressable.
    pub fn data_units(&self) -> u64 {
        self.mapping.data_units()
    }

    /// The physical location of a logical unit.
    pub fn locate(&self, logical: u64) -> UnitAddr {
        self.mapping.logical_to_addr(logical)
    }

    /// Parity units per stripe — the array's fault budget.
    fn parity_units(&self) -> usize {
        self.mapping.layout().parity_units_per_stripe() as usize
    }

    /// Whether `addr` is currently unreadable (on a failed/unrebuilt
    /// slot).
    fn is_lost(&self, addr: UnitAddr) -> bool {
        self.failed.iter().any(|f| {
            f.disk == addr.disk && f.rebuilt.as_ref().is_none_or(|r| !r[addr.offset as usize])
        })
    }

    fn unit(&self, addr: UnitAddr) -> &[u8] {
        let start = addr.offset as usize * self.unit_bytes;
        &self.disks[addr.disk as usize][start..start + self.unit_bytes]
    }

    fn unit_mut(&mut self, addr: UnitAddr) -> &mut [u8] {
        let start = addr.offset as usize * self.unit_bytes;
        &mut self.disks[addr.disk as usize][start..start + self.unit_bytes]
    }

    fn xor_into(acc: &mut [u8], src: &[u8]) {
        for (a, s) in acc.iter_mut().zip(src) {
            *a ^= s;
        }
    }

    /// Decodes every data unit of a mapped stripe under the current
    /// fault state: live units are copied, up to `m` erasures are
    /// recovered through whichever parities survive (P by plain XOR, Q
    /// by the Reed–Solomon algebra, both together for a double data
    /// erasure).
    ///
    /// # Panics
    ///
    /// Panics if the stripe has more erasures than parities — beyond
    /// the array's declared fault budget, which `fail_disk` enforces.
    fn stripe_data(&self, stripe: u64) -> Vec<Vec<u8>> {
        let units = self.mapping.stripe_units(stripe);
        let m = self.parity_units();
        let d = units.len() - m;
        let lost: Vec<bool> = units.iter().map(|u| self.is_lost(*u)).collect();
        let mut data: Vec<Vec<u8>> = (0..d)
            .map(|i| {
                if lost[i] {
                    vec![0u8; self.unit_bytes]
                } else {
                    self.unit(units[i]).to_vec()
                }
            })
            .collect();
        let missing: Vec<usize> = (0..d).filter(|&i| lost[i]).collect();
        match missing.len() {
            0 => {}
            1 => {
                let a = missing[0];
                if !lost[d] {
                    // P survives: the erased unit is the XOR of P and
                    // the other data units.
                    let mut acc = self.unit(units[d]).to_vec();
                    for (i, b) in data.iter().enumerate() {
                        if i != a {
                            Self::xor_into(&mut acc, b);
                        }
                    }
                    data[a] = acc;
                } else {
                    // P gone too: recover through Q,
                    // d_a = g^{-a} · (Q ⊕ Σ_{i≠a} g^i·d_i).
                    assert!(m == 2 && !lost[d + 1], "stripe beyond fault budget");
                    let mut acc = self.unit(units[d + 1]).to_vec();
                    for (i, b) in data.iter().enumerate() {
                        if i != a {
                            gf::mul_into(&mut acc, b, gf::pow2(i));
                        }
                    }
                    gf::scale(&mut acc, gf::inv(gf::pow2(a)));
                    data[a] = acc;
                }
            }
            2 => {
                // Two data erasures need both parities:
                //   p' = d_a ⊕ d_b,  q' = g^a·d_a ⊕ g^b·d_b
                //   d_a = (q' ⊕ g^b·p') / (g^a ⊕ g^b),  d_b = p' ⊕ d_a.
                assert!(
                    m == 2 && !lost[d] && !lost[d + 1],
                    "stripe beyond fault budget"
                );
                let (a, b) = (missing[0], missing[1]);
                let mut p = self.unit(units[d]).to_vec();
                let mut q = self.unit(units[d + 1]).to_vec();
                for (i, buf) in data.iter().enumerate() {
                    if i != a && i != b {
                        Self::xor_into(&mut p, buf);
                        gf::mul_into(&mut q, buf, gf::pow2(i));
                    }
                }
                gf::mul_into(&mut q, &p, gf::pow2(b));
                gf::scale(&mut q, gf::inv(gf::pow2(a) ^ gf::pow2(b)));
                Self::xor_into(&mut p, &q);
                data[a] = q;
                data[b] = p;
            }
            _ => panic!("stripe has more erasures than parities"),
        }
        data
    }

    /// Parity unit `j` (0 = P, 1 = Q) of a stripe, from its data units.
    fn compute_parity(&self, j: usize, data: &[Vec<u8>]) -> Vec<u8> {
        let mut acc = vec![0u8; self.unit_bytes];
        for (i, b) in data.iter().enumerate() {
            if j == 0 {
                Self::xor_into(&mut acc, b);
            } else {
                gf::mul_into(&mut acc, b, gf::pow2(i));
            }
        }
        acc
    }

    /// Reads a logical unit, reconstructing on the fly if its disk is down.
    ///
    /// # Panics
    ///
    /// Panics if `logical` is out of range.
    pub fn read(&self, logical: u64) -> Vec<u8> {
        let (stripe, index) = self.mapping.logical_to_stripe(logical);
        let units = self.mapping.stripe_units(stripe);
        let addr = units[index as usize];
        if !self.is_lost(addr) {
            return self.unit(addr).to_vec();
        }
        let mut data = self.stripe_data(stripe);
        data.swap_remove(index as usize)
    }

    /// Writes a logical unit under the current fault state: the fault-free
    /// read-modify-write, the degraded parity fold, or the lost-parity
    /// single write.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one unit or `logical` is out of
    /// range.
    pub fn write(&mut self, logical: u64, data: &[u8]) {
        assert_eq!(data.len(), self.unit_bytes, "write must be one unit");
        let (stripe, index) = self.mapping.logical_to_stripe(logical);
        let units = self.mapping.stripe_units(stripe);
        let addr = units[index as usize];
        let m = self.parity_units();
        let d = units.len() - m;

        if !self.is_lost(addr) {
            // Read-modify-write: every live parity absorbs the delta
            // (P: ⊕δ; Q: ⊕ g^index·δ). Lost parities are skipped — the
            // reconstruction sweep recreates them from the data.
            let old = self.unit(addr).to_vec();
            self.unit_mut(addr).copy_from_slice(data);
            let mut delta = old;
            Self::xor_into(&mut delta, data);
            for j in 0..m {
                let parity = units[d + j];
                if self.is_lost(parity) {
                    continue;
                }
                if j == 0 {
                    Self::xor_into(self.unit_mut(parity), &delta);
                } else {
                    gf::mul_into(self.unit_mut(parity), &delta, gf::pow2(index as usize));
                }
            }
            return;
        }
        // Data lost: decode the stripe's survivors, overlay the new
        // value, and recompute every live parity so the stripe still
        // reconstructs to it.
        let mut sdata = self.stripe_data(stripe);
        sdata[index as usize].copy_from_slice(data);
        for j in 0..m {
            let parity = units[d + j];
            if self.is_lost(parity) {
                continue;
            }
            let v = self.compute_parity(j, &sdata);
            self.unit_mut(parity).copy_from_slice(&v);
        }
        // With a replacement present, the driver may also write the data
        // directly (the user-writes algorithms); model that too so the
        // rebuilt unit is immediately valid.
        if let Some(f) = self
            .failed
            .iter_mut()
            .find(|f| f.disk == addr.disk && f.rebuilt.is_some())
        {
            let offset = addr.offset as usize;
            let start = offset * self.unit_bytes;
            self.disks[addr.disk as usize][start..start + self.unit_bytes].copy_from_slice(data);
            f.rebuilt.as_mut().expect("checked")[offset] = true;
        }
    }

    /// Writes a contiguous extent of logical units, applying the
    /// large-write optimization (criterion 5): stripes fully covered by an
    /// aligned span have their parity recomputed from the new data alone,
    /// with no read-modify-write of the old contents.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a whole number of units, the extent
    /// overruns capacity, or the array is not fault-free (extents under
    /// failure decompose to per-unit writes at the caller's level).
    pub fn write_extent(&mut self, start: u64, data: &[u8]) {
        assert_eq!(
            data.len() % self.unit_bytes,
            0,
            "extent must be whole units"
        );
        let count = (data.len() / self.unit_bytes) as u64;
        assert!(count > 0, "empty extent");
        assert!(
            start + count <= self.data_units(),
            "extent [{start}, +{count}) beyond capacity {}",
            self.data_units()
        );
        assert!(
            self.failed.is_empty(),
            "write_extent requires a fault-free array"
        );
        let m = self.parity_units();
        let d = self.mapping.layout().data_units_per_stripe() as u64;
        let mut logical = start;
        let end = start + count;
        while logical < end {
            let chunk = &data[((logical - start) as usize) * self.unit_bytes..];
            if logical.is_multiple_of(d) && end - logical >= d {
                // Full-stripe write: store the D new units, then every
                // parity from exactly those units — no read-modify-write.
                let (stripe, _) = self.mapping.logical_to_stripe(logical);
                let units = self.mapping.stripe_units(stripe);
                let dlen = units.len() - m;
                let new: Vec<Vec<u8>> = (0..dlen)
                    .map(|i| chunk[i * self.unit_bytes..(i + 1) * self.unit_bytes].to_vec())
                    .collect();
                for (i, addr) in units[..dlen].iter().enumerate() {
                    self.unit_mut(*addr).copy_from_slice(&new[i]);
                }
                for j in 0..m {
                    let v = self.compute_parity(j, &new);
                    self.unit_mut(units[dlen + j]).copy_from_slice(&v);
                }
                logical += d;
            } else {
                self.write(logical, &chunk[..self.unit_bytes]);
                logical += 1;
            }
        }
    }

    /// Fails a disk: its contents are gone. A layout with `m` parity
    /// units per stripe tolerates up to `m` concurrent failures —
    /// one for XOR parity, two for P+Q.
    ///
    /// # Errors
    ///
    /// Returns an error if the fault budget is spent, the disk already
    /// failed, or `disk` is out of range.
    pub fn fail_disk(&mut self, disk: u16) -> Result<(), Error> {
        if self.failed.iter().any(|f| f.disk == disk) {
            return Err(Error::InvalidState {
                reason: format!("disk {disk} is already failed"),
            });
        }
        if self.failed.len() >= self.parity_units() {
            return Err(Error::InvalidState {
                reason: format!(
                    "array already degraded: {} of {} tolerated failures used",
                    self.failed.len(),
                    self.parity_units()
                ),
            });
        }
        if disk >= self.mapping.disks() {
            return Err(Error::InvalidState {
                reason: format!("disk {disk} out of range"),
            });
        }
        self.failed.push(FailedDisk {
            disk,
            rebuilt: None,
        });
        // Losing the medium: scramble it so tests cannot accidentally read
        // stale data through a bug.
        for b in &mut self.disks[disk as usize] {
            *b = 0xDB;
        }
        Ok(())
    }

    /// Reports which parity stripes an *additional* failure of `second`
    /// would actually lose, given the disks already down — the
    /// per-layout exposure that `decluster_core::layout::vulnerability`
    /// predicts in aggregate. A stripe is lost when its erasure count
    /// (units still unreadable plus units on `second`) exceeds the
    /// parity count, so a P+Q array reports no losses for a second
    /// failure and real losses only for a third.
    ///
    /// The array is left unchanged.
    ///
    /// # Errors
    ///
    /// Returns an error if no disk has failed yet or `second` is invalid
    /// (out of range, or already failed). Otherwise returns the lost
    /// stripe ids — empty when every stripe still has parity to spare
    /// (a second failure under P+Q, or non-adjacent disks under chained
    /// mirroring), in which case the failure would actually be
    /// survivable.
    pub fn second_failure_losses(&self, second: u16) -> Result<Vec<u64>, Error> {
        if self.failed.is_empty() {
            return Err(Error::InvalidState {
                reason: "no first failure yet".into(),
            });
        }
        if second >= self.mapping.disks() || self.failed.iter().any(|f| f.disk == second) {
            return Err(Error::InvalidState {
                reason: format!("disk {second} is not a valid second failure"),
            });
        }
        let m = self.parity_units();
        let mut lost = Vec::new();
        for seq in 0..self.mapping.stripes() {
            let stripe = self.mapping.stripe_by_seq(seq);
            let units = self.mapping.stripe_units(stripe);
            let erased = units
                .iter()
                .filter(|u| self.is_lost(**u) || u.disk == second)
                .count();
            if erased > m {
                lost.push(stripe);
            }
        }
        Ok(lost)
    }

    /// Installs blank replacements for every failed disk that does not
    /// have one yet.
    ///
    /// # Errors
    ///
    /// Returns an error if no disk has failed or every failed disk
    /// already has a replacement installed.
    pub fn replace_disk(&mut self) -> Result<(), Error> {
        if self.failed.is_empty() {
            return Err(Error::InvalidState {
                reason: "no failed disk to replace".into(),
            });
        }
        if self.failed.iter().all(|f| f.rebuilt.is_some()) {
            return Err(Error::InvalidState {
                reason: "replacement already installed".into(),
            });
        }
        let units = self.mapping.units_per_disk() as usize;
        for f in &mut self.failed {
            if f.rebuilt.is_some() {
                continue;
            }
            for b in &mut self.disks[f.disk as usize] {
                *b = 0;
            }
            f.rebuilt = Some(vec![false; units]);
        }
        Ok(())
    }

    /// Reconstructs the units at `offset` of every replacement disk (one
    /// sweep cycle). Skips units already rebuilt and unmapped holes.
    ///
    /// # Errors
    ///
    /// Returns an error if no replacement is installed.
    pub fn reconstruct_unit(&mut self, offset: u64) -> Result<(), Error> {
        if self.failed.is_empty() || self.failed.iter().any(|f| f.rebuilt.is_none()) {
            return Err(Error::InvalidState {
                reason: "install a replacement first".into(),
            });
        }
        for k in 0..self.failed.len() {
            let f = self.failed[k].disk;
            if self.failed[k].rebuilt.as_ref().expect("replaced")[offset as usize] {
                continue;
            }
            let Some(stripe) = self.mapping.role_at(f, offset).stripe() else {
                continue; // unmapped hole
            };
            let units = self.mapping.stripe_units(stripe);
            let pos = units
                .iter()
                .position(|u| u.disk == f && u.offset == offset)
                .expect("the stripe contains its own member");
            let d = units.len() - self.parity_units();
            // Decode under the current erasures (a second failed disk's
            // unit in this stripe may still be lost — the stripe decode
            // recovers through the surviving parities).
            let data = self.stripe_data(stripe);
            let bytes = if pos < d {
                data[pos].clone()
            } else {
                self.compute_parity(pos - d, &data)
            };
            self.unit_mut(UnitAddr::new(f, offset))
                .copy_from_slice(&bytes);
            self.failed[k].rebuilt.as_mut().expect("replaced")[offset as usize] = true;
        }
        Ok(())
    }

    /// Sweeps the whole replacement disk(s); afterwards the array is
    /// fault-free again.
    ///
    /// # Errors
    ///
    /// Returns an error if no replacement is installed.
    pub fn reconstruct_all(&mut self) -> Result<(), Error> {
        let units = self.mapping.units_per_disk();
        for offset in 0..units {
            self.reconstruct_unit(offset)?;
        }
        self.failed.clear();
        Ok(())
    }

    /// Verifies that every mapped stripe's stored parities match the
    /// ones its data units generate (P as XOR, Q as the GF(256) sum).
    /// Only meaningful when fault-free.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistent stripe id.
    pub fn verify_parity(&self) -> Result<(), u64> {
        assert!(
            self.failed.is_empty(),
            "parity check requires a fault-free array"
        );
        let m = self.parity_units();
        for seq in 0..self.mapping.stripes() {
            let stripe = self.mapping.stripe_by_seq(seq);
            let units = self.mapping.stripe_units(stripe);
            let d = units.len() - m;
            let data: Vec<Vec<u8>> = units[..d].iter().map(|u| self.unit(*u).to_vec()).collect();
            for j in 0..m {
                if self.compute_parity(j, &data) != self.unit(units[d + j]) {
                    return Err(stripe);
                }
            }
        }
        Ok(())
    }

    /// Corrupts a stripe's parity unit, modelling the write hole: a crash
    /// that lands a data write but not its parity update leaves the stripe
    /// in exactly this state. [`DataArray::verify_parity`] will flag the
    /// stripe until [`DataArray::recompute_parity`] repairs it.
    ///
    /// # Errors
    ///
    /// Returns an error if the stripe is unmapped or its parity unit is
    /// currently lost (nothing stored to corrupt).
    pub fn scramble_parity(&mut self, stripe: u64) -> Result<(), Error> {
        let parity = self.parity_addr(stripe)?;
        for b in self.unit_mut(parity) {
            *b = !*b;
        }
        Ok(())
    }

    /// Recomputes a stripe's parity from its data units — the per-stripe
    /// repair a resync pass applies to a torn stripe.
    ///
    /// # Errors
    ///
    /// Returns an error if the stripe is unmapped or its parity unit is
    /// currently lost (the reconstruction sweep, not resync, will
    /// recreate it).
    pub fn recompute_parity(&mut self, stripe: u64) -> Result<(), Error> {
        self.parity_addr(stripe)?; // validate: mapped, live parity exists
        let units = self.mapping.stripe_units(stripe);
        let m = self.parity_units();
        let d = units.len() - m;
        if units[..d].iter().any(|u| self.is_lost(*u)) {
            return Err(Error::InvalidState {
                reason: format!("stripe {stripe} has a lost data unit; resync cannot run"),
            });
        }
        let data: Vec<Vec<u8>> = units[..d].iter().map(|u| self.unit(*u).to_vec()).collect();
        for j in 0..m {
            let parity = units[d + j];
            if self.is_lost(parity) {
                continue;
            }
            let v = self.compute_parity(j, &data);
            self.unit_mut(parity).copy_from_slice(&v);
        }
        Ok(())
    }

    /// The first live parity unit of a mapped stripe.
    fn parity_addr(&self, stripe: u64) -> Result<UnitAddr, Error> {
        if !self.mapping.is_mapped(stripe) {
            return Err(Error::InvalidState {
                reason: format!("stripe {stripe} is not mapped"),
            });
        }
        let units = self.mapping.stripe_units(stripe);
        let d = units.len() - self.parity_units();
        units[d..]
            .iter()
            .find(|u| !self.is_lost(**u))
            .copied()
            .ok_or_else(|| Error::InvalidState {
                reason: format!("stripe {stripe} has no live parity unit"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decluster_core::design::BlockDesign;
    use decluster_core::layout::{DeclusteredLayout, Raid5Layout};
    use decluster_sim::SimRng;

    fn array(g: u16, units: u64) -> DataArray {
        let layout =
            Arc::new(DeclusteredLayout::new(BlockDesign::complete(5, g).unwrap()).unwrap());
        DataArray::new(layout, units, 8).unwrap()
    }

    fn unit_of(rng: &mut SimRng) -> Vec<u8> {
        (0..8).map(|_| rng.next_u64() as u8).collect()
    }

    #[test]
    fn fault_free_write_read_round_trip() {
        let mut a = array(4, 32);
        let mut rng = SimRng::new(1);
        let mut shadow = std::collections::HashMap::new();
        for _ in 0..500 {
            let l = rng.below(a.data_units());
            let v = unit_of(&mut rng);
            a.write(l, &v);
            shadow.insert(l, v);
        }
        for (l, v) in &shadow {
            assert_eq!(&a.read(*l), v);
        }
        a.verify_parity().unwrap();
    }

    #[test]
    fn degraded_reads_reconstruct_on_the_fly() {
        let mut a = array(4, 32);
        let mut rng = SimRng::new(2);
        let mut shadow = std::collections::HashMap::new();
        for l in 0..a.data_units() {
            let v = unit_of(&mut rng);
            a.write(l, &v);
            shadow.insert(l, v);
        }
        a.fail_disk(3).unwrap();
        for (l, v) in &shadow {
            assert_eq!(&a.read(*l), v, "logical {l}");
        }
    }

    #[test]
    fn degraded_writes_fold_into_parity() {
        let mut a = array(4, 32);
        let mut rng = SimRng::new(3);
        a.fail_disk(1).unwrap();
        let mut shadow = std::collections::HashMap::new();
        for _ in 0..500 {
            let l = rng.below(a.data_units());
            let v = unit_of(&mut rng);
            a.write(l, &v);
            shadow.insert(l, v);
        }
        // Everything reads back even though some writes went to lost units
        // (via parity) and some parity units are lost (skipped updates).
        for (l, v) in &shadow {
            assert_eq!(&a.read(*l), v, "logical {l}");
        }
    }

    #[test]
    fn reconstruction_recovers_all_data_and_parity() {
        let mut a = array(4, 32);
        let mut rng = SimRng::new(4);
        let mut shadow = std::collections::HashMap::new();
        for l in 0..a.data_units() {
            let v = unit_of(&mut rng);
            a.write(l, &v);
            shadow.insert(l, v);
        }
        a.fail_disk(2).unwrap();
        // Degraded-mode churn before the replacement arrives.
        for _ in 0..300 {
            let l = rng.below(a.data_units());
            let v = unit_of(&mut rng);
            a.write(l, &v);
            shadow.insert(l, v);
        }
        a.replace_disk().unwrap();
        // Interleave user writes with the reconstruction sweep.
        let units = a.mapping.units_per_disk();
        for offset in 0..units {
            a.reconstruct_unit(offset).unwrap();
            if offset % 3 == 0 {
                let l = rng.below(a.data_units());
                let v = unit_of(&mut rng);
                a.write(l, &v);
                shadow.insert(l, v);
            }
        }
        a.reconstruct_all().unwrap();
        for (l, v) in &shadow {
            assert_eq!(&a.read(*l), v, "logical {l}");
        }
        a.verify_parity().unwrap();
    }

    #[test]
    fn every_disk_can_fail_and_recover() {
        for failed in 0..5u16 {
            let mut a = array(4, 16);
            let mut rng = SimRng::new(100 + failed as u64);
            let mut shadow = Vec::new();
            for l in 0..a.data_units() {
                let v = unit_of(&mut rng);
                a.write(l, &v);
                shadow.push(v);
            }
            a.fail_disk(failed).unwrap();
            a.replace_disk().unwrap();
            a.reconstruct_all().unwrap();
            for (l, v) in shadow.iter().enumerate() {
                assert_eq!(&a.read(l as u64), v, "disk {failed}, logical {l}");
            }
            a.verify_parity().unwrap();
        }
    }

    #[test]
    fn raid5_data_plane_works_too() {
        let layout = Arc::new(Raid5Layout::new(5).unwrap());
        let mut a = DataArray::new(layout, 20, 8).unwrap();
        let mut rng = SimRng::new(5);
        let mut shadow = Vec::new();
        for l in 0..a.data_units() {
            let v = unit_of(&mut rng);
            a.write(l, &v);
            shadow.push(v);
        }
        a.fail_disk(0).unwrap();
        for (l, v) in shadow.iter().enumerate() {
            assert_eq!(&a.read(l as u64), v);
        }
        a.replace_disk().unwrap();
        a.reconstruct_all().unwrap();
        a.verify_parity().unwrap();
    }

    #[test]
    fn mirror_pair_semantics() {
        // G = 2: parity is a copy; folding and reconstruction degenerate to
        // mirroring and must still work.
        let layout =
            Arc::new(DeclusteredLayout::new(BlockDesign::complete(5, 2).unwrap()).unwrap());
        let mut a = DataArray::new(layout, 16, 8).unwrap();
        let mut rng = SimRng::new(6);
        let mut shadow = Vec::new();
        for l in 0..a.data_units() {
            let v = unit_of(&mut rng);
            a.write(l, &v);
            shadow.push(v);
        }
        a.fail_disk(4).unwrap();
        for (l, v) in shadow.iter().enumerate() {
            assert_eq!(&a.read(l as u64), v);
        }
        a.replace_disk().unwrap();
        a.reconstruct_all().unwrap();
        a.verify_parity().unwrap();
    }

    #[test]
    fn extent_writes_keep_parity_and_survive_failure() {
        let mut a = array(4, 32);
        let mut rng = SimRng::new(9);
        // Mixed aligned/unaligned extents over the whole space.
        let mut shadow = vec![vec![0u8; 8]; a.data_units() as usize];
        for _ in 0..100 {
            let len = 1 + rng.below(7);
            let start = rng.below(a.data_units() - len + 1);
            let bytes: Vec<u8> = (0..len * 8).map(|_| rng.next_u64() as u8).collect();
            a.write_extent(start, &bytes);
            for i in 0..len {
                shadow[(start + i) as usize]
                    .copy_from_slice(&bytes[(i * 8) as usize..((i + 1) * 8) as usize]);
            }
        }
        a.verify_parity().unwrap();
        // Data survives a failure + rebuild, proving the optimized parity
        // was correct.
        a.fail_disk(2).unwrap();
        a.replace_disk().unwrap();
        a.reconstruct_all().unwrap();
        for (l, v) in shadow.iter().enumerate() {
            assert_eq!(&a.read(l as u64), v, "logical {l}");
        }
    }

    #[test]
    #[should_panic(expected = "fault-free")]
    fn extent_write_rejects_degraded_array() {
        let mut a = array(4, 32);
        a.fail_disk(0).unwrap();
        a.write_extent(0, &[0u8; 24]);
    }

    #[test]
    fn second_failure_losses_shrink_as_rebuild_progresses() {
        let mut a = array(4, 32);
        let mut rng = SimRng::new(12);
        for l in 0..a.data_units() {
            let v = unit_of(&mut rng);
            a.write(l, &v);
        }
        a.fail_disk(0).unwrap();
        let before = a.second_failure_losses(1).unwrap().len();
        assert!(before > 0, "disks 0 and 1 share stripes in this layout");
        a.replace_disk().unwrap();
        // Rebuild the first half of the disk: fewer stripes remain exposed.
        for offset in 0..16 {
            a.reconstruct_unit(offset).unwrap();
        }
        let after = a.second_failure_losses(1).unwrap().len();
        assert!(
            after < before,
            "exposure should shrink: {before} -> {after}"
        );
        // Fully rebuilt: no stripe is exposed at all.
        for offset in 16..32 {
            a.reconstruct_unit(offset).unwrap();
        }
        assert!(a.second_failure_losses(1).unwrap().is_empty());
    }

    #[test]
    fn double_failure_is_rejected() {
        let mut a = array(4, 16);
        assert!(a.second_failure_losses(1).is_err(), "array still healthy");
        a.fail_disk(0).unwrap();
        assert!(a.fail_disk(1).is_err(), "array already degraded");
        assert!(a.fail_disk(9).is_err(), "disk out of range");
        assert!(a.second_failure_losses(0).is_err(), "same disk twice");
        assert!(a.reconstruct_unit(0).is_err(), "no replacement yet");
        a.replace_disk().unwrap();
        assert!(a.replace_disk().is_err(), "replacement already installed");
    }

    fn pq_array(units: u64) -> DataArray {
        let layout = Arc::new(
            decluster_core::layout::PqLayout::new(BlockDesign::complete(5, 4).unwrap()).unwrap(),
        );
        DataArray::new(layout, units, 8).unwrap()
    }

    #[test]
    fn pq_survives_every_two_disk_failure_pair() {
        for first in 0..5u16 {
            for second in 0..5u16 {
                if second == first {
                    continue;
                }
                let mut a = pq_array(20);
                let mut rng = SimRng::new(1000 + u64::from(first) * 8 + u64::from(second));
                let mut shadow = Vec::new();
                for l in 0..a.data_units() {
                    let v = unit_of(&mut rng);
                    a.write(l, &v);
                    shadow.push(v);
                }
                a.fail_disk(first).unwrap();
                a.fail_disk(second).unwrap();
                // Every byte readable through the double-degraded path.
                for (l, v) in shadow.iter().enumerate() {
                    assert_eq!(&a.read(l as u64), v, "disks ({first},{second}) logical {l}");
                }
                // Degraded writes land while both disks are down.
                for _ in 0..100 {
                    let l = rng.below(a.data_units());
                    let v = unit_of(&mut rng);
                    a.write(l, &v);
                    shadow[l as usize] = v;
                }
                a.replace_disk().unwrap();
                a.reconstruct_all().unwrap();
                for (l, v) in shadow.iter().enumerate() {
                    assert_eq!(&a.read(l as u64), v, "after rebuild ({first},{second}) {l}");
                }
                a.verify_parity().unwrap();
            }
        }
    }

    #[test]
    fn pq_second_failure_loses_nothing_third_is_rejected() {
        let mut a = pq_array(20);
        a.fail_disk(0).unwrap();
        assert!(
            a.second_failure_losses(1).unwrap().is_empty(),
            "P+Q absorbs a second failure"
        );
        a.fail_disk(1).unwrap();
        assert!(a.fail_disk(2).is_err(), "third failure exceeds the budget");
        // With both parities spendable, a third failure would lose the
        // stripes all three disks share.
        assert!(
            !a.second_failure_losses(2).unwrap().is_empty(),
            "a third failure would lose shared stripes"
        );
    }

    #[test]
    fn pq_extent_writes_generate_both_parities() {
        let mut a = pq_array(24);
        let mut rng = SimRng::new(77);
        let total = a.data_units();
        let bytes: Vec<u8> = (0..total * 8).map(|_| rng.next_u64() as u8).collect();
        a.write_extent(0, &bytes);
        a.verify_parity().unwrap();
        a.fail_disk(1).unwrap();
        a.fail_disk(3).unwrap();
        for l in 0..total {
            assert_eq!(
                a.read(l),
                bytes[(l * 8) as usize..((l + 1) * 8) as usize],
                "logical {l}"
            );
        }
    }

    #[test]
    fn scramble_and_recompute_parity_round_trip() {
        let mut a = array(4, 32);
        let mut rng = SimRng::new(21);
        for l in 0..a.data_units() {
            let v = unit_of(&mut rng);
            a.write(l, &v);
        }
        a.verify_parity().unwrap();
        let (stripe, _) = a.mapping.logical_to_stripe(5);
        a.scramble_parity(stripe).unwrap();
        assert_eq!(a.verify_parity(), Err(stripe), "scramble must be visible");
        a.recompute_parity(stripe).unwrap();
        a.verify_parity().unwrap();
    }

    #[test]
    fn parity_helpers_reject_bad_stripes() {
        let mut a = array(4, 32);
        assert!(a.scramble_parity(u64::MAX).is_err(), "unmapped stripe");
        assert!(a.recompute_parity(u64::MAX).is_err(), "unmapped stripe");
        // Fail the disk holding some stripe's parity: that stripe's parity
        // can no longer be scrambled or recomputed.
        let (stripe, _) = a.mapping.logical_to_stripe(0);
        let units = a.mapping.stripe_units(stripe);
        let parity = units[units.len() - 1];
        a.fail_disk(parity.disk).unwrap();
        assert!(a.scramble_parity(stripe).is_err(), "parity unit is lost");
        assert!(a.recompute_parity(stripe).is_err(), "parity unit is lost");
    }

    #[test]
    #[should_panic(expected = "one unit")]
    fn short_write_panics() {
        array(4, 16).write(0, &[1, 2, 3]);
    }
}
