//! The data plane: the striping driver's semantics executed over real
//! bytes with XOR parity.
//!
//! The timing simulator ([`crate::sim::ArraySim`]) deliberately carries no
//! data. This module re-implements the same decomposition rules —
//! read-modify-write, parity folding, on-the-fly reconstruction, direct
//! writes to the replacement, the reconstruction sweep — over actual
//! buffers, so that the *algebra* of the declustered layout (does
//! reconstruction really recover every byte? does folding keep parity
//! consistent?) is proven separately from performance.
//!
//! # Examples
//!
//! ```
//! use decluster_array::data::DataArray;
//! use decluster_core::design::BlockDesign;
//! use decluster_core::layout::DeclusteredLayout;
//! use std::sync::Arc;
//!
//! let layout = Arc::new(DeclusteredLayout::new(BlockDesign::complete(5, 4)?)?);
//! let mut array = DataArray::new(layout, 32, 8)?;
//! array.write(0, &[7; 8]);
//! array.fail_disk(array.locate(0).disk)?;  // lose the disk holding unit 0
//! assert_eq!(array.read(0), vec![7; 8]);   // rebuilt on the fly
//! array.replace_disk()?;
//! array.reconstruct_all()?;
//! assert_eq!(array.read(0), vec![7; 8]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use decluster_core::error::Error;
use decluster_core::layout::{ArrayMapping, ParityLayout, UnitAddr};
use std::sync::Arc;

/// A byte-accurate model of the array.
#[derive(Debug, Clone)]
pub struct DataArray {
    mapping: ArrayMapping,
    unit_bytes: usize,
    /// Disk contents, `disks[d][offset * unit_bytes ..]`.
    disks: Vec<Vec<u8>>,
    failed: Option<u16>,
    /// Present once the failed disk has been physically replaced.
    rebuilt: Option<Vec<bool>>,
}

impl DataArray {
    /// Creates a zero-filled array over `layout` with `units_per_disk`
    /// units of `unit_bytes` bytes each.
    ///
    /// # Errors
    ///
    /// Returns an error if the layout cannot map the disk size.
    pub fn new(
        layout: Arc<dyn ParityLayout>,
        units_per_disk: u64,
        unit_bytes: usize,
    ) -> Result<DataArray, Error> {
        let mapping = ArrayMapping::new(layout, units_per_disk)?;
        let disks = (0..mapping.disks())
            .map(|_| vec![0u8; units_per_disk as usize * unit_bytes])
            .collect();
        Ok(DataArray {
            mapping,
            unit_bytes,
            disks,
            failed: None,
            rebuilt: None,
        })
    }

    /// Logical data units addressable.
    pub fn data_units(&self) -> u64 {
        self.mapping.data_units()
    }

    /// The physical location of a logical unit.
    pub fn locate(&self, logical: u64) -> UnitAddr {
        self.mapping.logical_to_addr(logical)
    }

    /// Whether `addr` is currently unreadable (on the failed/unrebuilt
    /// slot).
    fn is_lost(&self, addr: UnitAddr) -> bool {
        match (self.failed, &self.rebuilt) {
            (Some(f), None) => addr.disk == f,
            (Some(f), Some(rebuilt)) => addr.disk == f && !rebuilt[addr.offset as usize],
            _ => false,
        }
    }

    fn unit(&self, addr: UnitAddr) -> &[u8] {
        let start = addr.offset as usize * self.unit_bytes;
        &self.disks[addr.disk as usize][start..start + self.unit_bytes]
    }

    fn unit_mut(&mut self, addr: UnitAddr) -> &mut [u8] {
        let start = addr.offset as usize * self.unit_bytes;
        &mut self.disks[addr.disk as usize][start..start + self.unit_bytes]
    }

    fn xor_into(acc: &mut [u8], src: &[u8]) {
        for (a, s) in acc.iter_mut().zip(src) {
            *a ^= s;
        }
    }

    /// Reads a logical unit, reconstructing on the fly if its disk is down.
    ///
    /// # Panics
    ///
    /// Panics if `logical` is out of range.
    pub fn read(&self, logical: u64) -> Vec<u8> {
        let (stripe, index) = self.mapping.logical_to_stripe(logical);
        let units = self.mapping.stripe_units(stripe);
        let addr = units[index as usize];
        if !self.is_lost(addr) {
            return self.unit(addr).to_vec();
        }
        // XOR of all surviving units of the stripe.
        let mut acc = vec![0u8; self.unit_bytes];
        for u in units.iter().filter(|u| u.disk != addr.disk) {
            Self::xor_into(&mut acc, self.unit(*u));
        }
        acc
    }

    /// Writes a logical unit under the current fault state: the fault-free
    /// read-modify-write, the degraded parity fold, or the lost-parity
    /// single write.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one unit or `logical` is out of
    /// range.
    pub fn write(&mut self, logical: u64, data: &[u8]) {
        assert_eq!(data.len(), self.unit_bytes, "write must be one unit");
        let (stripe, index) = self.mapping.logical_to_stripe(logical);
        let units = self.mapping.stripe_units(stripe);
        let addr = units[index as usize];
        let parity = units[units.len() - 1]; // parity is ordered last
        let data_lost = self.is_lost(addr);
        let parity_lost = self.is_lost(parity);

        if !data_lost && !parity_lost {
            // Read-modify-write: parity ^= old ^ new.
            let old = self.unit(addr).to_vec();
            self.unit_mut(addr).copy_from_slice(data);
            let mut delta = old;
            Self::xor_into(&mut delta, data);
            Self::xor_into(self.unit_mut(parity), &delta);
            return;
        }
        if parity_lost {
            // No value in updating lost parity: write the data alone. The
            // reconstruction sweep recomputes parity from the data units.
            self.unit_mut(addr).copy_from_slice(data);
            return;
        }
        // Data lost: fold the new value into parity so the stripe still
        // reconstructs to it. parity = new_data XOR (other data units).
        let mut acc = data.to_vec();
        for (i, u) in units[..units.len() - 1].iter().enumerate() {
            if i != index as usize {
                Self::xor_into(&mut acc, self.unit(*u));
            }
        }
        self.unit_mut(parity).copy_from_slice(&acc);
        // With a replacement present, the driver may also write the data
        // directly (the user-writes algorithms); model that too so the
        // rebuilt unit is immediately valid.
        if let Some(rebuilt) = &mut self.rebuilt {
            let offset = addr.offset as usize;
            let start = offset * self.unit_bytes;
            self.disks[addr.disk as usize][start..start + self.unit_bytes].copy_from_slice(data);
            rebuilt[offset] = true;
        }
    }

    /// Writes a contiguous extent of logical units, applying the
    /// large-write optimization (criterion 5): stripes fully covered by an
    /// aligned span have their parity recomputed from the new data alone,
    /// with no read-modify-write of the old contents.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a whole number of units, the extent
    /// overruns capacity, or the array is not fault-free (extents under
    /// failure decompose to per-unit writes at the caller's level).
    pub fn write_extent(&mut self, start: u64, data: &[u8]) {
        assert_eq!(
            data.len() % self.unit_bytes,
            0,
            "extent must be whole units"
        );
        let count = (data.len() / self.unit_bytes) as u64;
        assert!(count > 0, "empty extent");
        assert!(
            start + count <= self.data_units(),
            "extent [{start}, +{count}) beyond capacity {}",
            self.data_units()
        );
        assert!(
            self.failed.is_none(),
            "write_extent requires a fault-free array"
        );
        let d = self.mapping.layout().data_units_per_stripe() as u64;
        let mut logical = start;
        let end = start + count;
        while logical < end {
            let chunk = &data[((logical - start) as usize) * self.unit_bytes..];
            if logical.is_multiple_of(d) && end - logical >= d {
                // Full-stripe write: store the D new units, then parity :=
                // XOR of exactly those units.
                let (stripe, _) = self.mapping.logical_to_stripe(logical);
                let units = self.mapping.stripe_units(stripe);
                let mut parity_acc = vec![0u8; self.unit_bytes];
                for (i, addr) in units[..units.len() - 1].iter().enumerate() {
                    let unit = &chunk[i * self.unit_bytes..(i + 1) * self.unit_bytes];
                    self.unit_mut(*addr).copy_from_slice(unit);
                    Self::xor_into(&mut parity_acc, unit);
                }
                self.unit_mut(units[units.len() - 1])
                    .copy_from_slice(&parity_acc);
                logical += d;
            } else {
                self.write(logical, &chunk[..self.unit_bytes]);
                logical += 1;
            }
        }
    }

    /// Fails a disk: its contents are gone.
    ///
    /// # Errors
    ///
    /// Returns an error if a disk already failed or `disk` is out of
    /// range.
    pub fn fail_disk(&mut self, disk: u16) -> Result<(), Error> {
        if self.failed.is_some() {
            return Err(Error::InvalidState {
                reason: "array already degraded".into(),
            });
        }
        if disk >= self.mapping.disks() {
            return Err(Error::InvalidState {
                reason: format!("disk {disk} out of range"),
            });
        }
        self.failed = Some(disk);
        // Losing the medium: scramble it so tests cannot accidentally read
        // stale data through a bug.
        for b in &mut self.disks[disk as usize] {
            *b = 0xDB;
        }
        Ok(())
    }

    /// Attempts to fail a *second* disk while one is already down: always
    /// an error for a single-failure-correcting array, reporting exactly
    /// which parity stripes (and how many logical data units) would be
    /// lost — the per-layout exposure that
    /// `decluster_core::layout::vulnerability` predicts in aggregate.
    ///
    /// The array is left unchanged.
    ///
    /// # Errors
    ///
    /// Returns an error if no disk has failed yet or `second` is invalid.
    /// Otherwise returns the lost stripe ids (empty only for layouts where
    /// the pair shares no stripe, e.g. non-adjacent disks under chained
    /// mirroring — in which case the failure would actually be
    /// survivable).
    pub fn second_failure_losses(&self, second: u16) -> Result<Vec<u64>, Error> {
        let Some(first) = self.failed else {
            return Err(Error::InvalidState {
                reason: "no first failure yet".into(),
            });
        };
        if second >= self.mapping.disks() || second == first {
            return Err(Error::InvalidState {
                reason: format!("disk {second} is not a valid second failure"),
            });
        }
        let mut lost = Vec::new();
        for seq in 0..self.mapping.stripes() {
            let stripe = self.mapping.stripe_by_seq(seq);
            let units = self.mapping.stripe_units(stripe);
            let hits_first = units.iter().any(|u| u.disk == first && self.is_lost(*u));
            let hits_second = units.iter().any(|u| u.disk == second);
            if hits_first && hits_second {
                lost.push(stripe);
            }
        }
        Ok(lost)
    }

    /// Installs a blank replacement for the failed disk.
    ///
    /// # Errors
    ///
    /// Returns an error if no disk has failed or a replacement is already
    /// installed.
    pub fn replace_disk(&mut self) -> Result<(), Error> {
        let Some(f) = self.failed else {
            return Err(Error::InvalidState {
                reason: "no failed disk to replace".into(),
            });
        };
        if self.rebuilt.is_some() {
            return Err(Error::InvalidState {
                reason: "replacement already installed".into(),
            });
        }
        for b in &mut self.disks[f as usize] {
            *b = 0;
        }
        self.rebuilt = Some(vec![false; self.disks[f as usize].len() / self.unit_bytes]);
        Ok(())
    }

    /// Reconstructs the unit at `offset` of the replacement disk (one
    /// sweep cycle). Skips units already rebuilt and unmapped holes.
    ///
    /// # Errors
    ///
    /// Returns an error if no replacement is installed.
    pub fn reconstruct_unit(&mut self, offset: u64) -> Result<(), Error> {
        let (Some(f), Some(rebuilt)) = (self.failed, &self.rebuilt) else {
            return Err(Error::InvalidState {
                reason: "install a replacement first".into(),
            });
        };
        if rebuilt[offset as usize] {
            return Ok(());
        }
        let Some(stripe) = self.mapping.role_at(f, offset).stripe() else {
            return Ok(()); // unmapped hole
        };
        let units = self.mapping.stripe_units(stripe);
        let mut acc = vec![0u8; self.unit_bytes];
        for u in units.iter().filter(|u| u.disk != f) {
            Self::xor_into(&mut acc, self.unit(*u));
        }
        self.unit_mut(UnitAddr::new(f, offset))
            .copy_from_slice(&acc);
        if let Some(rebuilt) = &mut self.rebuilt {
            rebuilt[offset as usize] = true;
        }
        Ok(())
    }

    /// Sweeps the whole replacement disk; afterwards the array is
    /// fault-free again.
    ///
    /// # Errors
    ///
    /// Returns an error if no replacement is installed.
    pub fn reconstruct_all(&mut self) -> Result<(), Error> {
        let units = self.mapping.units_per_disk();
        for offset in 0..units {
            self.reconstruct_unit(offset)?;
        }
        self.failed = None;
        self.rebuilt = None;
        Ok(())
    }

    /// Verifies that every mapped stripe's parity equals the XOR of its
    /// data units. Only meaningful when fault-free.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistent stripe id.
    pub fn verify_parity(&self) -> Result<(), u64> {
        assert!(
            self.failed.is_none(),
            "parity check requires a fault-free array"
        );
        for seq in 0..self.mapping.stripes() {
            let stripe = self.mapping.stripe_by_seq(seq);
            let units = self.mapping.stripe_units(stripe);
            let mut acc = vec![0u8; self.unit_bytes];
            for u in &units {
                Self::xor_into(&mut acc, self.unit(*u));
            }
            if acc.iter().any(|&b| b != 0) {
                return Err(stripe);
            }
        }
        Ok(())
    }

    /// Corrupts a stripe's parity unit, modelling the write hole: a crash
    /// that lands a data write but not its parity update leaves the stripe
    /// in exactly this state. [`DataArray::verify_parity`] will flag the
    /// stripe until [`DataArray::recompute_parity`] repairs it.
    ///
    /// # Errors
    ///
    /// Returns an error if the stripe is unmapped or its parity unit is
    /// currently lost (nothing stored to corrupt).
    pub fn scramble_parity(&mut self, stripe: u64) -> Result<(), Error> {
        let parity = self.parity_addr(stripe)?;
        for b in self.unit_mut(parity) {
            *b = !*b;
        }
        Ok(())
    }

    /// Recomputes a stripe's parity from its data units — the per-stripe
    /// repair a resync pass applies to a torn stripe.
    ///
    /// # Errors
    ///
    /// Returns an error if the stripe is unmapped or its parity unit is
    /// currently lost (the reconstruction sweep, not resync, will
    /// recreate it).
    pub fn recompute_parity(&mut self, stripe: u64) -> Result<(), Error> {
        let parity = self.parity_addr(stripe)?;
        let units = self.mapping.stripe_units(stripe);
        let mut acc = vec![0u8; self.unit_bytes];
        for u in &units[..units.len() - 1] {
            Self::xor_into(&mut acc, self.unit(*u));
        }
        self.unit_mut(parity).copy_from_slice(&acc);
        Ok(())
    }

    /// The live parity unit of a mapped stripe.
    fn parity_addr(&self, stripe: u64) -> Result<UnitAddr, Error> {
        if !self.mapping.is_mapped(stripe) {
            return Err(Error::InvalidState {
                reason: format!("stripe {stripe} is not mapped"),
            });
        }
        let units = self.mapping.stripe_units(stripe);
        let parity = units[units.len() - 1]; // parity is ordered last
        if self.is_lost(parity) {
            return Err(Error::InvalidState {
                reason: format!("stripe {stripe} has no live parity unit"),
            });
        }
        Ok(parity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decluster_core::design::BlockDesign;
    use decluster_core::layout::{DeclusteredLayout, Raid5Layout};
    use decluster_sim::SimRng;

    fn array(g: u16, units: u64) -> DataArray {
        let layout =
            Arc::new(DeclusteredLayout::new(BlockDesign::complete(5, g).unwrap()).unwrap());
        DataArray::new(layout, units, 8).unwrap()
    }

    fn unit_of(rng: &mut SimRng) -> Vec<u8> {
        (0..8).map(|_| rng.next_u64() as u8).collect()
    }

    #[test]
    fn fault_free_write_read_round_trip() {
        let mut a = array(4, 32);
        let mut rng = SimRng::new(1);
        let mut shadow = std::collections::HashMap::new();
        for _ in 0..500 {
            let l = rng.below(a.data_units());
            let v = unit_of(&mut rng);
            a.write(l, &v);
            shadow.insert(l, v);
        }
        for (l, v) in &shadow {
            assert_eq!(&a.read(*l), v);
        }
        a.verify_parity().unwrap();
    }

    #[test]
    fn degraded_reads_reconstruct_on_the_fly() {
        let mut a = array(4, 32);
        let mut rng = SimRng::new(2);
        let mut shadow = std::collections::HashMap::new();
        for l in 0..a.data_units() {
            let v = unit_of(&mut rng);
            a.write(l, &v);
            shadow.insert(l, v);
        }
        a.fail_disk(3).unwrap();
        for (l, v) in &shadow {
            assert_eq!(&a.read(*l), v, "logical {l}");
        }
    }

    #[test]
    fn degraded_writes_fold_into_parity() {
        let mut a = array(4, 32);
        let mut rng = SimRng::new(3);
        a.fail_disk(1).unwrap();
        let mut shadow = std::collections::HashMap::new();
        for _ in 0..500 {
            let l = rng.below(a.data_units());
            let v = unit_of(&mut rng);
            a.write(l, &v);
            shadow.insert(l, v);
        }
        // Everything reads back even though some writes went to lost units
        // (via parity) and some parity units are lost (skipped updates).
        for (l, v) in &shadow {
            assert_eq!(&a.read(*l), v, "logical {l}");
        }
    }

    #[test]
    fn reconstruction_recovers_all_data_and_parity() {
        let mut a = array(4, 32);
        let mut rng = SimRng::new(4);
        let mut shadow = std::collections::HashMap::new();
        for l in 0..a.data_units() {
            let v = unit_of(&mut rng);
            a.write(l, &v);
            shadow.insert(l, v);
        }
        a.fail_disk(2).unwrap();
        // Degraded-mode churn before the replacement arrives.
        for _ in 0..300 {
            let l = rng.below(a.data_units());
            let v = unit_of(&mut rng);
            a.write(l, &v);
            shadow.insert(l, v);
        }
        a.replace_disk().unwrap();
        // Interleave user writes with the reconstruction sweep.
        let units = a.mapping.units_per_disk();
        for offset in 0..units {
            a.reconstruct_unit(offset).unwrap();
            if offset % 3 == 0 {
                let l = rng.below(a.data_units());
                let v = unit_of(&mut rng);
                a.write(l, &v);
                shadow.insert(l, v);
            }
        }
        a.reconstruct_all().unwrap();
        for (l, v) in &shadow {
            assert_eq!(&a.read(*l), v, "logical {l}");
        }
        a.verify_parity().unwrap();
    }

    #[test]
    fn every_disk_can_fail_and_recover() {
        for failed in 0..5u16 {
            let mut a = array(4, 16);
            let mut rng = SimRng::new(100 + failed as u64);
            let mut shadow = Vec::new();
            for l in 0..a.data_units() {
                let v = unit_of(&mut rng);
                a.write(l, &v);
                shadow.push(v);
            }
            a.fail_disk(failed).unwrap();
            a.replace_disk().unwrap();
            a.reconstruct_all().unwrap();
            for (l, v) in shadow.iter().enumerate() {
                assert_eq!(&a.read(l as u64), v, "disk {failed}, logical {l}");
            }
            a.verify_parity().unwrap();
        }
    }

    #[test]
    fn raid5_data_plane_works_too() {
        let layout = Arc::new(Raid5Layout::new(5).unwrap());
        let mut a = DataArray::new(layout, 20, 8).unwrap();
        let mut rng = SimRng::new(5);
        let mut shadow = Vec::new();
        for l in 0..a.data_units() {
            let v = unit_of(&mut rng);
            a.write(l, &v);
            shadow.push(v);
        }
        a.fail_disk(0).unwrap();
        for (l, v) in shadow.iter().enumerate() {
            assert_eq!(&a.read(l as u64), v);
        }
        a.replace_disk().unwrap();
        a.reconstruct_all().unwrap();
        a.verify_parity().unwrap();
    }

    #[test]
    fn mirror_pair_semantics() {
        // G = 2: parity is a copy; folding and reconstruction degenerate to
        // mirroring and must still work.
        let layout =
            Arc::new(DeclusteredLayout::new(BlockDesign::complete(5, 2).unwrap()).unwrap());
        let mut a = DataArray::new(layout, 16, 8).unwrap();
        let mut rng = SimRng::new(6);
        let mut shadow = Vec::new();
        for l in 0..a.data_units() {
            let v = unit_of(&mut rng);
            a.write(l, &v);
            shadow.push(v);
        }
        a.fail_disk(4).unwrap();
        for (l, v) in shadow.iter().enumerate() {
            assert_eq!(&a.read(l as u64), v);
        }
        a.replace_disk().unwrap();
        a.reconstruct_all().unwrap();
        a.verify_parity().unwrap();
    }

    #[test]
    fn extent_writes_keep_parity_and_survive_failure() {
        let mut a = array(4, 32);
        let mut rng = SimRng::new(9);
        // Mixed aligned/unaligned extents over the whole space.
        let mut shadow = vec![vec![0u8; 8]; a.data_units() as usize];
        for _ in 0..100 {
            let len = 1 + rng.below(7);
            let start = rng.below(a.data_units() - len + 1);
            let bytes: Vec<u8> = (0..len * 8).map(|_| rng.next_u64() as u8).collect();
            a.write_extent(start, &bytes);
            for i in 0..len {
                shadow[(start + i) as usize]
                    .copy_from_slice(&bytes[(i * 8) as usize..((i + 1) * 8) as usize]);
            }
        }
        a.verify_parity().unwrap();
        // Data survives a failure + rebuild, proving the optimized parity
        // was correct.
        a.fail_disk(2).unwrap();
        a.replace_disk().unwrap();
        a.reconstruct_all().unwrap();
        for (l, v) in shadow.iter().enumerate() {
            assert_eq!(&a.read(l as u64), v, "logical {l}");
        }
    }

    #[test]
    #[should_panic(expected = "fault-free")]
    fn extent_write_rejects_degraded_array() {
        let mut a = array(4, 32);
        a.fail_disk(0).unwrap();
        a.write_extent(0, &[0u8; 24]);
    }

    #[test]
    fn second_failure_losses_shrink_as_rebuild_progresses() {
        let mut a = array(4, 32);
        let mut rng = SimRng::new(12);
        for l in 0..a.data_units() {
            let v = unit_of(&mut rng);
            a.write(l, &v);
        }
        a.fail_disk(0).unwrap();
        let before = a.second_failure_losses(1).unwrap().len();
        assert!(before > 0, "disks 0 and 1 share stripes in this layout");
        a.replace_disk().unwrap();
        // Rebuild the first half of the disk: fewer stripes remain exposed.
        for offset in 0..16 {
            a.reconstruct_unit(offset).unwrap();
        }
        let after = a.second_failure_losses(1).unwrap().len();
        assert!(
            after < before,
            "exposure should shrink: {before} -> {after}"
        );
        // Fully rebuilt: no stripe is exposed at all.
        for offset in 16..32 {
            a.reconstruct_unit(offset).unwrap();
        }
        assert!(a.second_failure_losses(1).unwrap().is_empty());
    }

    #[test]
    fn double_failure_is_rejected() {
        let mut a = array(4, 16);
        assert!(a.second_failure_losses(1).is_err(), "array still healthy");
        a.fail_disk(0).unwrap();
        assert!(a.fail_disk(1).is_err(), "array already degraded");
        assert!(a.fail_disk(9).is_err(), "disk out of range");
        assert!(a.second_failure_losses(0).is_err(), "same disk twice");
        assert!(a.reconstruct_unit(0).is_err(), "no replacement yet");
        a.replace_disk().unwrap();
        assert!(a.replace_disk().is_err(), "replacement already installed");
    }

    #[test]
    fn scramble_and_recompute_parity_round_trip() {
        let mut a = array(4, 32);
        let mut rng = SimRng::new(21);
        for l in 0..a.data_units() {
            let v = unit_of(&mut rng);
            a.write(l, &v);
        }
        a.verify_parity().unwrap();
        let (stripe, _) = a.mapping.logical_to_stripe(5);
        a.scramble_parity(stripe).unwrap();
        assert_eq!(a.verify_parity(), Err(stripe), "scramble must be visible");
        a.recompute_parity(stripe).unwrap();
        a.verify_parity().unwrap();
    }

    #[test]
    fn parity_helpers_reject_bad_stripes() {
        let mut a = array(4, 32);
        assert!(a.scramble_parity(u64::MAX).is_err(), "unmapped stripe");
        assert!(a.recompute_parity(u64::MAX).is_err(), "unmapped stripe");
        // Fail the disk holding some stripe's parity: that stripe's parity
        // can no longer be scrambled or recomputed.
        let (stripe, _) = a.mapping.logical_to_stripe(0);
        let units = a.mapping.stripe_units(stripe);
        let parity = units[units.len() - 1];
        a.fail_disk(parity.disk).unwrap();
        assert!(a.scramble_parity(stripe).is_err(), "parity unit is lost");
        assert!(a.recompute_parity(stripe).is_err(), "parity unit is lost");
    }

    #[test]
    #[should_panic(expected = "one unit")]
    fn short_write_panics() {
        array(4, 16).write(0, &[1, 2, 3]);
    }
}
