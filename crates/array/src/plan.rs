//! The striping driver's decision table: how a user access decomposes into
//! disk accesses under each operating mode.
//!
//! Kept pure (no simulator state, no timing) so every case in the paper's
//! Sections 6–8 can be unit-tested directly: the four-access write, the
//! `G = 3` three-access optimization, on-the-fly reconstruction, parity
//! folding, lost-parity writes, redirection, direct writes to the
//! replacement, and piggybacking.

use crate::spare::SpareMap;
use decluster_core::layout::{ArrayMapping, UnitAddr};
use decluster_core::recon::ReconAlgorithm;
use decluster_disk::IoKind;
use decluster_workload::AccessKind;

/// One planned disk access in stripe-unit terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedIo {
    /// Target disk.
    pub disk: u16,
    /// Target unit offset on that disk.
    pub offset: u64,
    /// Read or write.
    pub kind: IoKind,
}

impl PlannedIo {
    fn read(addr: UnitAddr) -> PlannedIo {
        PlannedIo {
            disk: addr.disk,
            offset: addr.offset,
            kind: IoKind::Read,
        }
    }

    fn write(addr: UnitAddr) -> PlannedIo {
        PlannedIo {
            disk: addr.disk,
            offset: addr.offset,
            kind: IoKind::Write,
        }
    }
}

/// A two-phase access plan: `phase1` runs concurrently; when all of it
/// completes, `phase2` runs concurrently; the access completes when both
/// are done. (Pre-reads before writes in a read-modify-write.)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpPlan {
    /// First wave of disk accesses.
    pub phase1: Vec<PlannedIo>,
    /// Second wave, gated on the first.
    pub phase2: Vec<PlannedIo>,
    /// A replacement-disk offset to mark rebuilt when the plan completes
    /// (direct user writes to the replacement).
    pub mark_rebuilt: Option<u64>,
    /// A replacement-disk offset to piggyback: after the plan completes the
    /// driver issues a background write of the reconstructed unit there.
    pub piggyback: Option<u64>,
}

impl OpPlan {
    /// Total disk accesses in the plan (excluding any piggybacked write).
    pub fn accesses(&self) -> usize {
        self.phase1.len() + self.phase2.len()
    }

    /// Moves `phase2` up if `phase1` is empty (a plan with no pre-reads
    /// starts writing immediately).
    fn normalized(mut self) -> OpPlan {
        if self.phase1.is_empty() {
            self.phase1 = std::mem::take(&mut self.phase2);
        }
        self
    }
}

/// The array's fault state as the planner sees it.
#[derive(Debug, Clone, Copy)]
pub enum FaultView<'a> {
    /// All disks healthy.
    FaultFree,
    /// `failed` has failed; no replacement is present.
    Degraded {
        /// The failed disk.
        failed: u16,
    },
    /// `failed` is being reconstructed — onto a dedicated replacement
    /// (`spares: None`) or into distributed spare slots (`spares: Some`).
    Rebuilding {
        /// The slot being rebuilt.
        failed: u16,
        /// The active reconstruction algorithm.
        algorithm: ReconAlgorithm,
        /// Per-offset rebuilt flags for the failed disk's contents.
        rebuilt: &'a [bool],
        /// Spare-slot assignments when rebuilding into distributed spares.
        spares: Option<&'a SpareMap>,
    },
}

impl FaultView<'_> {
    /// The failed slot, if any.
    fn failed(&self) -> Option<u16> {
        match self {
            FaultView::FaultFree => None,
            FaultView::Degraded { failed } | FaultView::Rebuilding { failed, .. } => Some(*failed),
        }
    }

    /// Whether the unit at `offset` of the failed slot has valid data on
    /// the replacement disk.
    fn is_rebuilt(&self, offset: u64) -> bool {
        match self {
            FaultView::Rebuilding { rebuilt, .. } => rebuilt[offset as usize],
            _ => false,
        }
    }

    fn algorithm(&self) -> Option<ReconAlgorithm> {
        match self {
            FaultView::Rebuilding { algorithm, .. } => Some(*algorithm),
            _ => None,
        }
    }

    /// Where a (rebuilt) unit of the failed disk now lives: its spare slot
    /// under distributed sparing, or the same address on the replacement.
    pub fn repair_location(&self, addr: UnitAddr) -> UnitAddr {
        match self {
            FaultView::Rebuilding {
                failed,
                spares: Some(spares),
                ..
            } if addr.disk == *failed => spares
                .spare_of(addr.offset)
                .expect("mapped unit has a spare slot"),
            _ => addr,
        }
    }

    /// The live address of a unit: `repair_location` if the unit has been
    /// rebuilt, the original address otherwise.
    pub(crate) fn live_location(&self, addr: UnitAddr) -> UnitAddr {
        match self {
            FaultView::Rebuilding { failed, .. }
                if addr.disk == *failed && self.is_rebuilt(addr.offset) =>
            {
                self.repair_location(addr)
            }
            _ => addr,
        }
    }
}

/// Plans the disk accesses for one user access to `logical`.
///
/// # Panics
///
/// Panics if `logical` is beyond the mapping's capacity.
pub fn plan_user_access(
    mapping: &ArrayMapping,
    kind: AccessKind,
    logical: u64,
    fault: FaultView<'_>,
) -> OpPlan {
    let mut units = Vec::new();
    plan_user_access_with(mapping, kind, logical, fault, &mut units)
}

/// [`plan_user_access`] with a caller-provided scratch buffer for the
/// stripe's unit addresses, so per-event planning allocates nothing for
/// the stripe map. The buffer is cleared and refilled; its contents after
/// the call are unspecified.
pub fn plan_user_access_with(
    mapping: &ArrayMapping,
    kind: AccessKind,
    logical: u64,
    fault: FaultView<'_>,
    units: &mut Vec<UnitAddr>,
) -> OpPlan {
    let (stripe, index) = mapping.logical_to_stripe(logical);
    units.clear();
    mapping.stripe_units_into(stripe, units);
    let g = mapping.stripe_width() as usize;
    let m = mapping.parity_units_per_stripe() as usize;
    debug_assert_eq!(units.len(), g);
    let data = units[index as usize];

    match kind {
        AccessKind::Read => plan_read(units, data, m, fault),
        AccessKind::Write => plan_write(units, data, index, m, fault),
    }
    .normalized()
}

fn plan_read(units: &[UnitAddr], data: UnitAddr, m: usize, fault: FaultView<'_>) -> OpPlan {
    let failed = fault.failed();
    if Some(data.disk) != failed {
        // The common case: one read from a healthy disk.
        return OpPlan {
            phase1: vec![PlannedIo::read(data)],
            ..OpPlan::default()
        };
    }
    // Data is on the failed slot.
    if fault.is_rebuilt(data.offset) && fault.algorithm().is_some_and(|a| a.redirects_reads()) {
        // Redirection of reads: the rebuilt copy (replacement disk or
        // spare slot) already holds it.
        return OpPlan {
            phase1: vec![PlannedIo::read(fault.live_location(data))],
            ..OpPlan::default()
        };
    }
    // On-the-fly reconstruction: the stripe's other data units plus one
    // surviving parity. With single parity that is every survivor; a P+Q
    // stripe needs only one of its two parities for a single erasure.
    let d = units.len() - m;
    let mut phase1: Vec<PlannedIo> = units[..d]
        .iter()
        .filter(|u| u.disk != data.disk)
        .map(|&u| PlannedIo::read(u))
        .collect();
    if let Some(p) = units[d..].iter().find(|u| u.disk != data.disk) {
        phase1.push(PlannedIo::read(*p));
    }
    let piggyback = match fault.algorithm() {
        Some(a) if a.piggybacks_writes() && !fault.is_rebuilt(data.offset) => Some(data.offset),
        _ => None,
    };
    OpPlan {
        phase1,
        piggyback,
        ..OpPlan::default()
    }
}

fn plan_write(
    units: &[UnitAddr],
    data: UnitAddr,
    index: u16,
    m: usize,
    fault: FaultView<'_>,
) -> OpPlan {
    let g = units.len();
    let d = g - m;
    let failed = fault.failed();
    let lost = |u: UnitAddr| Some(u.disk) == failed && !fault.is_rebuilt(u.offset);
    let data_lost = lost(data);
    // Every reachable parity (possibly via a rebuilt copy) takes part in
    // the write: P absorbs the XOR delta, Q the coefficient-weighted one.
    let live_parities: Vec<UnitAddr> = units[d..]
        .iter()
        .filter(|&&p| !lost(p))
        .map(|&p| fault.live_location(p))
        .collect();

    if !data_lost {
        let data_live = fault.live_location(data);
        if live_parities.is_empty() {
            // There is no value in updating lost parity (Section 7): the
            // write becomes a single data access. Reconstruction will
            // regenerate the parity from the data units, including this
            // new value.
            return OpPlan {
                phase2: vec![PlannedIo::write(data_live)],
                ..OpPlan::default()
            };
        }
        if g == 2 && m == 1 {
            // Mirrored pair: parity is a copy of the single data unit —
            // write both, no pre-reads.
            return OpPlan {
                phase2: vec![
                    PlannedIo::write(data_live),
                    PlannedIo::write(live_parities[0]),
                ],
                ..OpPlan::default()
            };
        }
        if g == 3 && m == 1 && live_parities.len() == 1 {
            // The G = 3 optimization pre-reads the *sibling* data unit,
            // which may itself be lost — fall back to the generic RMW in
            // that case.
            let sibling = units[..2]
                .iter()
                .enumerate()
                .find(|&(i, _)| i != index as usize)
                .map(|(_, &u)| u)
                .expect("a G=3 stripe has two data units");
            if !lost(sibling) {
                return OpPlan {
                    phase1: vec![PlannedIo::read(fault.live_location(sibling))],
                    phase2: vec![
                        PlannedIo::write(data_live),
                        PlannedIo::write(live_parities[0]),
                    ],
                    ..OpPlan::default()
                };
            }
        }
        // The general read-modify-write: pre-read the data unit and every
        // reachable parity, then overwrite them — 4 accesses for single
        // parity, 6 for P+Q.
        let mut phase1 = vec![PlannedIo::read(data_live)];
        let mut phase2 = vec![PlannedIo::write(data_live)];
        for &p in &live_parities {
            phase1.push(PlannedIo::read(p));
            phase2.push(PlannedIo::write(p));
        }
        return OpPlan {
            phase1,
            phase2,
            ..OpPlan::default()
        };
    }
    // Data is lost. Every live parity is rebuilt from the stripe's other
    // data units (the old data cannot be pre-read).
    let sibling_reads: Vec<PlannedIo> = units[..d]
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != index as usize)
        .map(|(_, &u)| PlannedIo::read(u))
        .collect();
    let direct = fault.algorithm().is_some_and(|a| a.writes_to_replacement());
    let mut phase2: Vec<PlannedIo> = live_parities.iter().map(|&p| PlannedIo::write(p)).collect();
    let mut mark_rebuilt = None;
    if direct {
        // Send the new data straight to its repair location (replacement
        // disk or spare slot), rebuilding that unit as a side effect.
        phase2.push(PlannedIo::write(fault.repair_location(data)));
        mark_rebuilt = Some(data.offset);
    }
    // Otherwise: fold into parity only — the data unit is regenerated later
    // by the reconstruction sweep.
    OpPlan {
        phase1: sibling_reads,
        phase2,
        mark_rebuilt,
        ..OpPlan::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decluster_core::design::BlockDesign;
    use decluster_core::layout::{DeclusteredLayout, ParityLayout, Raid5Layout};
    use std::sync::Arc;

    fn mapping(g: u16) -> ArrayMapping {
        let layout: Arc<dyn ParityLayout> =
            Arc::new(DeclusteredLayout::new(BlockDesign::complete(5, g).unwrap()).unwrap());
        ArrayMapping::new(layout, 200).unwrap()
    }

    fn raid5_mapping(c: u16) -> ArrayMapping {
        ArrayMapping::new(Arc::new(Raid5Layout::new(c).unwrap()), 200).unwrap()
    }

    #[test]
    fn fault_free_read_is_one_access() {
        let m = mapping(4);
        let p = plan_user_access(&m, AccessKind::Read, 17, FaultView::FaultFree);
        assert_eq!(p.accesses(), 1);
        assert_eq!(p.phase1.len(), 1);
        assert_eq!(p.phase1[0].kind, IoKind::Read);
        assert!(p.phase2.is_empty());
    }

    #[test]
    fn fault_free_write_is_four_accesses() {
        let m = mapping(4);
        let p = plan_user_access(&m, AccessKind::Write, 17, FaultView::FaultFree);
        assert_eq!(p.accesses(), 4);
        assert_eq!(p.phase1.len(), 2);
        assert!(p.phase1.iter().all(|io| io.kind == IoKind::Read));
        assert_eq!(p.phase2.len(), 2);
        assert!(p.phase2.iter().all(|io| io.kind == IoKind::Write));
        // Pre-reads and writes hit the same two units.
        let mut pre: Vec<(u16, u64)> = p.phase1.iter().map(|io| (io.disk, io.offset)).collect();
        let mut wr: Vec<(u16, u64)> = p.phase2.iter().map(|io| (io.disk, io.offset)).collect();
        pre.sort_unstable();
        wr.sort_unstable();
        assert_eq!(pre, wr);
    }

    #[test]
    fn g3_write_is_three_accesses() {
        let m = mapping(3);
        let p = plan_user_access(&m, AccessKind::Write, 5, FaultView::FaultFree);
        assert_eq!(p.accesses(), 3, "{p:?}");
        assert_eq!(p.phase1.len(), 1);
        assert_eq!(p.phase1[0].kind, IoKind::Read);
        assert_eq!(p.phase2.len(), 2);
        // The pre-read targets the *other* data unit, not the written one.
        let written: Vec<(u16, u64)> = p.phase2.iter().map(|io| (io.disk, io.offset)).collect();
        assert!(!written.contains(&(p.phase1[0].disk, p.phase1[0].offset)));
    }

    #[test]
    fn g3_write_with_lost_sibling_falls_back_to_rmw() {
        // Regression: the G=3 optimization pre-reads the *other* data
        // unit; if that sibling is on the failed disk the plan must fall
        // back to the generic read-modify-write and never touch the dead
        // disk.
        let m = mapping(3);
        // Find a logical unit whose own data and parity are healthy but
        // whose sibling sits on the failed disk.
        let failed = 0u16;
        let logical = (0..m.data_units())
            .find(|&l| {
                let (stripe, index) = m.logical_to_stripe(l);
                let units = m.stripe_units(stripe);
                let data = units[index as usize];
                let parity = units[2];
                let sibling = units[if index == 0 { 1 } else { 0 }];
                data.disk != failed && parity.disk != failed && sibling.disk == failed
            })
            .expect("some stripe has exactly its sibling on disk 0");
        let p = plan_user_access(
            &m,
            AccessKind::Write,
            logical,
            FaultView::Degraded { failed },
        );
        assert_eq!(p.accesses(), 4, "{p:?}");
        assert!(
            p.phase1.iter().chain(&p.phase2).all(|io| io.disk != failed),
            "plan touches the dead disk: {p:?}"
        );
        // Sanity: with a healthy sibling the 3-access optimization remains.
        let healthy = plan_user_access(&m, AccessKind::Write, logical, FaultView::FaultFree);
        assert_eq!(healthy.accesses(), 3);
    }

    #[test]
    fn mirror_write_is_two_parallel_writes() {
        let m = mapping(2);
        let p = plan_user_access(&m, AccessKind::Write, 3, FaultView::FaultFree);
        assert_eq!(p.accesses(), 2);
        // Normalization: with no pre-reads the writes go out immediately.
        assert_eq!(p.phase1.len(), 2);
        assert!(p.phase2.is_empty());
    }

    /// Finds a logical unit whose data lives on `disk`.
    fn logical_on_disk(m: &ArrayMapping, disk: u16) -> u64 {
        (0..m.data_units())
            .find(|&l| m.logical_to_addr(l).disk == disk)
            .expect("some unit lives on every disk")
    }

    /// Finds a logical unit with data off `disk` but parity on `disk`.
    fn logical_with_parity_on(m: &ArrayMapping, disk: u16) -> u64 {
        (0..m.data_units())
            .find(|&l| {
                let (stripe, _) = m.logical_to_stripe(l);
                let units = m.stripe_units(stripe);
                m.logical_to_addr(l).disk != disk && units.last().unwrap().disk == disk
            })
            .expect("some stripe has parity on every disk")
    }

    #[test]
    fn degraded_read_fans_out_to_survivors() {
        let m = mapping(4);
        let l = logical_on_disk(&m, 2);
        let p = plan_user_access(&m, AccessKind::Read, l, FaultView::Degraded { failed: 2 });
        // G−1 = 3 survivor reads, no phase 2.
        assert_eq!(p.phase1.len(), 3);
        assert!(p
            .phase1
            .iter()
            .all(|io| io.kind == IoKind::Read && io.disk != 2));
        assert!(p.phase2.is_empty());
        assert_eq!(p.piggyback, None);
    }

    #[test]
    fn degraded_read_of_healthy_unit_is_normal() {
        let m = mapping(4);
        let l = logical_on_disk(&m, 1);
        let p = plan_user_access(&m, AccessKind::Read, l, FaultView::Degraded { failed: 2 });
        assert_eq!(p.accesses(), 1);
    }

    #[test]
    fn degraded_write_with_lost_parity_is_single_access() {
        let m = mapping(4);
        let l = logical_with_parity_on(&m, 3);
        let p = plan_user_access(&m, AccessKind::Write, l, FaultView::Degraded { failed: 3 });
        assert_eq!(p.accesses(), 1, "{p:?}");
        assert_eq!(p.phase1[0].kind, IoKind::Write);
        assert_ne!(p.phase1[0].disk, 3);
    }

    #[test]
    fn degraded_write_of_lost_data_folds_into_parity() {
        let m = mapping(4);
        let l = logical_on_disk(&m, 0);
        let p = plan_user_access(&m, AccessKind::Write, l, FaultView::Degraded { failed: 0 });
        // G−2 = 2 sibling reads, then the parity write. No access to disk 0.
        assert_eq!(p.phase1.len(), 2);
        assert!(p.phase1.iter().all(|io| io.kind == IoKind::Read));
        assert_eq!(p.phase2.len(), 1);
        assert_eq!(p.phase2[0].kind, IoKind::Write);
        assert!(p.phase1.iter().chain(&p.phase2).all(|io| io.disk != 0));
        assert_eq!(p.mark_rebuilt, None);
    }

    #[test]
    fn rebuilding_baseline_matches_degraded_behaviour() {
        let m = mapping(4);
        let rebuilt = vec![false; 200];
        let l = logical_on_disk(&m, 0);
        let degraded =
            plan_user_access(&m, AccessKind::Write, l, FaultView::Degraded { failed: 0 });
        let baseline = plan_user_access(
            &m,
            AccessKind::Write,
            l,
            FaultView::Rebuilding {
                failed: 0,
                algorithm: ReconAlgorithm::Baseline,
                rebuilt: &rebuilt,
                spares: None,
            },
        );
        assert_eq!(degraded, baseline);
    }

    #[test]
    fn user_writes_sends_data_to_replacement_and_marks() {
        let m = mapping(4);
        let rebuilt = vec![false; 200];
        let l = logical_on_disk(&m, 0);
        let addr = m.logical_to_addr(l);
        let p = plan_user_access(
            &m,
            AccessKind::Write,
            l,
            FaultView::Rebuilding {
                failed: 0,
                algorithm: ReconAlgorithm::UserWrites,
                rebuilt: &rebuilt,
                spares: None,
            },
        );
        // Sibling reads, then parity write + replacement data write.
        assert_eq!(p.phase1.len(), 2);
        assert_eq!(p.phase2.len(), 2);
        assert!(p
            .phase2
            .iter()
            .any(|io| io.disk == 0 && io.offset == addr.offset));
        assert_eq!(p.mark_rebuilt, Some(addr.offset));
    }

    #[test]
    fn redirect_reads_rebuilt_unit_from_replacement() {
        let m = mapping(4);
        let l = logical_on_disk(&m, 0);
        let addr = m.logical_to_addr(l);
        let mut rebuilt = vec![false; 200];
        rebuilt[addr.offset as usize] = true;
        let redirected = plan_user_access(
            &m,
            AccessKind::Read,
            l,
            FaultView::Rebuilding {
                failed: 0,
                algorithm: ReconAlgorithm::Redirect,
                rebuilt: &rebuilt,
                spares: None,
            },
        );
        assert_eq!(redirected.accesses(), 1);
        assert_eq!(redirected.phase1[0].disk, 0);
        // user-writes (no redirection) still reconstructs on the fly.
        let not_redirected = plan_user_access(
            &m,
            AccessKind::Read,
            l,
            FaultView::Rebuilding {
                failed: 0,
                algorithm: ReconAlgorithm::UserWrites,
                rebuilt: &rebuilt,
                spares: None,
            },
        );
        assert_eq!(not_redirected.phase1.len(), 3);
    }

    #[test]
    fn piggyback_requests_background_write() {
        let m = mapping(4);
        let l = logical_on_disk(&m, 0);
        let addr = m.logical_to_addr(l);
        let rebuilt = vec![false; 200];
        let p = plan_user_access(
            &m,
            AccessKind::Read,
            l,
            FaultView::Rebuilding {
                failed: 0,
                algorithm: ReconAlgorithm::RedirectPiggyback,
                rebuilt: &rebuilt,
                spares: None,
            },
        );
        assert_eq!(p.phase1.len(), 3);
        assert_eq!(p.piggyback, Some(addr.offset));
    }

    #[test]
    fn rebuilt_unit_write_is_normal_rmw_on_replacement() {
        let m = mapping(4);
        let l = logical_on_disk(&m, 0);
        let addr = m.logical_to_addr(l);
        let mut rebuilt = vec![false; 200];
        rebuilt[addr.offset as usize] = true;
        let p = plan_user_access(
            &m,
            AccessKind::Write,
            l,
            FaultView::Rebuilding {
                failed: 0,
                algorithm: ReconAlgorithm::UserWrites,
                rebuilt: &rebuilt,
                spares: None,
            },
        );
        assert_eq!(p.accesses(), 4);
        // Data half of the RMW addresses the replacement (disk 0).
        assert!(p.phase1.iter().any(|io| io.disk == 0));
        assert!(p.phase2.iter().any(|io| io.disk == 0));
        assert_eq!(p.mark_rebuilt, None);
    }

    #[test]
    fn rebuilt_parity_write_is_normal_rmw() {
        let m = mapping(4);
        let l = logical_with_parity_on(&m, 3);
        let (stripe, _) = m.logical_to_stripe(l);
        let parity = *m.stripe_units(stripe).last().unwrap();
        let mut rebuilt = vec![false; 200];
        rebuilt[parity.offset as usize] = true;
        let p = plan_user_access(
            &m,
            AccessKind::Write,
            l,
            FaultView::Rebuilding {
                failed: 3,
                algorithm: ReconAlgorithm::Redirect,
                rebuilt: &rebuilt,
                spares: None,
            },
        );
        assert_eq!(p.accesses(), 4);
    }

    #[test]
    fn raid5_degraded_read_uses_all_survivors() {
        let m = raid5_mapping(5);
        let l = logical_on_disk(&m, 4);
        let p = plan_user_access(&m, AccessKind::Read, l, FaultView::Degraded { failed: 4 });
        // α = 1: every surviving disk participates.
        assert_eq!(p.phase1.len(), 4);
        let disks: std::collections::HashSet<u16> = p.phase1.iter().map(|io| io.disk).collect();
        assert_eq!(disks.len(), 4);
    }
}
