//! A minimal slab allocator for the simulator's in-flight operations.
//!
//! The event loop creates and retires one record per operation and holds
//! only a small working set at any instant. A `HashMap<u64, Op>` there
//! pays for hashing on every event and reallocates buckets as the map
//! grows; this slab replaces it with an array indexed by a reusable
//! `u32` slot. Insertion pops a free slot (or pushes one new `Option`),
//! lookup is a bounds-checked index, and removal pushes the slot back on
//! the free list — so a long simulation reaches a steady state where the
//! hot loop allocates nothing at all.
//!
//! Slots are reused aggressively, so a slot index is only meaningful
//! while its entry is live. The simulator guarantees this by construction:
//! an operation's disk accesses all complete or are explicitly dropped
//! before its slot is freed.

/// A vector-backed slab with free-list slot reuse.
#[derive(Debug)]
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Slab<T> {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the slab holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Stores `value`, returning its slot.
    ///
    /// # Panics
    ///
    /// Panics if the slab would exceed `u32::MAX` slots.
    pub fn insert(&mut self, value: T) -> u32 {
        self.live += 1;
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some(value);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("slab overflow");
                self.slots.push(Some(value));
                slot
            }
        }
    }

    /// The entry at `slot`, if live.
    pub fn get(&self, slot: u32) -> Option<&T> {
        self.slots.get(slot as usize)?.as_ref()
    }

    /// Mutable access to the entry at `slot`, if live.
    pub fn get_mut(&mut self, slot: u32) -> Option<&mut T> {
        self.slots.get_mut(slot as usize)?.as_mut()
    }

    /// Iterates over the live entries in slot order, yielding
    /// `(slot, &entry)`. Used for whole-slab scans outside the hot path
    /// (e.g. classifying in-flight operations at a crash).
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (i as u32, v)))
    }

    /// Removes and returns the entry at `slot`, freeing the slot for
    /// reuse. Returns `None` if the slot is vacant.
    pub fn remove(&mut self, slot: u32) -> Option<T> {
        let value = self.slots.get_mut(slot as usize)?.take();
        if value.is_some() {
            self.live -= 1;
            self.free.push(slot);
        }
        value
    }
}

impl<T> Default for Slab<T> {
    fn default() -> Slab<T> {
        Slab::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_ne!(a, b);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.remove(a), None);
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.get(b), Some(&"b"));
    }

    #[test]
    fn slots_are_reused_without_growth() {
        let mut slab = Slab::new();
        let first = slab.insert(0u64);
        slab.remove(first);
        let second = slab.insert(1u64);
        assert_eq!(first, second, "freed slot should be reused");
        // Steady-state churn at a bounded working set never grows storage.
        let mut held = Vec::new();
        for i in 0..8 {
            held.push(slab.insert(i));
        }
        let high_water = slab.slots.len();
        for round in 0..1000u64 {
            let slot = held.remove((round % 8) as usize);
            slab.remove(slot);
            held.push(slab.insert(round));
        }
        assert_eq!(slab.slots.len(), high_water);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut slab = Slab::new();
        let slot = slab.insert(41);
        *slab.get_mut(slot).unwrap() += 1;
        assert_eq!(slab.get(slot), Some(&42));
        assert!(!slab.is_empty());
    }

    #[test]
    fn iter_yields_live_entries_in_slot_order() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        let c = slab.insert("c");
        slab.remove(b);
        let seen: Vec<_> = slab.iter().collect();
        assert_eq!(seen, vec![(a, &"a"), (c, &"c")]);
    }

    #[test]
    fn vacant_and_out_of_range_slots_are_none() {
        let mut slab: Slab<u8> = Slab::new();
        assert!(slab.is_empty());
        assert_eq!(slab.get(0), None);
        assert_eq!(slab.get_mut(7), None);
        assert_eq!(slab.remove(7), None);
    }
}
