//! Offline stand-in for the `serde` facade.
//!
//! The build environment cannot reach crates.io, and the workspace's only
//! serde usage is `#[derive(Serialize, Deserialize)]` markers on result
//! and config types (all actual output is hand-rolled CSV/JSON). This
//! crate re-exports no-op derive macros under the same paths so the
//! annotations compile unchanged; restoring the real serde is a one-line
//! change in the workspace manifest.

/// Marker trait standing in for `serde::Serialize`. Implemented for
/// everything so generic `T: Serialize` bounds keep compiling.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`. Implemented for
/// everything so generic bounds keep compiling.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

// The derive macros share the traits' names, as in the real serde.
pub use serde_derive::{Deserialize, Serialize};
