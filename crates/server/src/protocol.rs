//! Wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message — request or response — is one *frame*: a `u32`
//! little-endian byte length followed by that many payload bytes. A
//! request payload starts with a fixed 26-byte header
//! ([`RequestHeader`]); a response payload starts with a fixed 9-byte
//! header ([`ResponseHeader`]). All integers are little-endian.
//!
//! ```text
//! request  := len:u32 | req_id:u64 | opcode:u8 | flags:u8
//!           | deadline_us:u32 | a:u64 | b:u32 | body…
//! response := len:u32 | req_id:u64 | status:u8 | body…
//! ```
//!
//! `a` and `b` are per-opcode operands (block number, session id, disk
//! index, worker count, byte count — see [`Opcode`]); unused operands
//! are zero. `deadline_us` is the client's latency budget in
//! microseconds, measured from server receipt; `0` means no deadline.
//! The server never leaves a request unanswered: a request whose budget
//! expires gets [`Status::Deadline`], one rejected by admission control
//! gets [`Status::Overloaded`], one arriving during drain gets
//! [`Status::ShuttingDown`] — all immediately, never a hang.
//!
//! Frames are capped at [`MAX_FRAME`]; a peer announcing a larger
//! frame is malformed and the connection is dropped (nothing after the
//! length can be trusted).

use std::io::{self, Read, Write};

/// Hard upper bound on one frame's payload, requests and responses
/// alike. Large enough for a full-stripe write on any sane geometry,
/// small enough that a corrupt length prefix cannot OOM the peer.
pub const MAX_FRAME: usize = 4 << 20;

/// Bytes of the fixed request header inside a request frame.
pub const REQUEST_HEADER_BYTES: usize = 8 + 1 + 1 + 4 + 8 + 4;

/// Bytes of the fixed response header inside a response frame.
pub const RESPONSE_HEADER_BYTES: usize = 8 + 1;

/// Request operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Opens (or resumes) a session. Must be the first request on every
    /// connection. `a` = client-chosen session id. The Ok response body
    /// is the session epoch (`u64`): the number of connections this
    /// session id has made, so a client can observe its own reconnects.
    Hello = 1,
    /// Reads `b` bytes starting at block `a`. Ok body = the data.
    Read = 2,
    /// Writes the body at block `a`.
    Write = 3,
    /// Durably flushes every acknowledged write.
    Flush = 4,
    /// Admin: fails disk `a` (medium scrambled, array degraded).
    FailDisk = 5,
    /// Admin: installs a blank replacement for the failed disk.
    ReplaceDisk = 6,
    /// Admin: rebuilds the replacement online with `a` worker threads
    /// (`0` = one per core). Ok body = a JSON rebuild report.
    StartRebuild = 7,
    /// Admin: scrubs the array (`a` = 1 to repair, 0 to only check).
    /// Ok body = a JSON scrub report.
    Scrub = 8,
    /// Admin: snapshot of store health. Ok body = `StoreStats` JSON.
    Stats = 9,
    /// Admin: begins graceful shutdown — drain in-flight, then close.
    Shutdown = 10,
}

impl Opcode {
    /// Decodes a wire byte.
    pub fn from_u8(byte: u8) -> Option<Opcode> {
        Some(match byte {
            1 => Opcode::Hello,
            2 => Opcode::Read,
            3 => Opcode::Write,
            4 => Opcode::Flush,
            5 => Opcode::FailDisk,
            6 => Opcode::ReplaceDisk,
            7 => Opcode::StartRebuild,
            8 => Opcode::Scrub,
            9 => Opcode::Stats,
            10 => Opcode::Shutdown,
            _ => return None,
        })
    }

    /// Whether re-executing the operation yields the same outcome as
    /// the first execution (reads and writes of the same bytes are;
    /// state-transition admin ops are not). Non-idempotent responses
    /// are remembered per session so a client retry after reconnect
    /// replays the recorded outcome instead of re-executing.
    pub fn idempotent(self) -> bool {
        matches!(
            self,
            Opcode::Hello | Opcode::Read | Opcode::Write | Opcode::Flush | Opcode::Stats
        )
    }
}

/// Response status codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Success; the body is the operation's result.
    Ok = 0,
    /// The request's deadline expired before a result could be sent.
    /// The operation may or may not have executed — all data-path ops
    /// are idempotent, so the client may simply re-issue.
    Deadline = 1,
    /// Admission control shed the request; nothing executed. Retry
    /// after backoff.
    Overloaded = 2,
    /// The server is draining; nothing executed. The body names the
    /// reason; reconnecting will fail until a new server starts.
    ShuttingDown = 3,
    /// The store reported an unrecoverable media/storage error; the
    /// body is the store's error text.
    Media = 4,
    /// The request was well-formed but invalid (unknown session, bad
    /// range, admin precondition failed); body is the reason.
    Invalid = 5,
    /// The request could not be parsed; the connection closes after
    /// this response when the stream cannot be resynchronised.
    Malformed = 6,
}

impl Status {
    /// Decodes a wire byte.
    pub fn from_u8(byte: u8) -> Option<Status> {
        Some(match byte {
            0 => Status::Ok,
            1 => Status::Deadline,
            2 => Status::Overloaded,
            3 => Status::ShuttingDown,
            4 => Status::Media,
            5 => Status::Invalid,
            6 => Status::Malformed,
            _ => return None,
        })
    }
}

/// The fixed header opening every request frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestHeader {
    /// Client-assigned id echoed in the response; must be strictly
    /// increasing per session (dedup and replay depend on it).
    pub req_id: u64,
    /// The operation.
    pub opcode: Opcode,
    /// Reserved; must be zero.
    pub flags: u8,
    /// Latency budget in microseconds from server receipt; 0 = none.
    pub deadline_us: u32,
    /// First operand (block / session id / disk / threads / repair).
    pub a: u64,
    /// Second operand (read byte count).
    pub b: u32,
}

impl RequestHeader {
    /// Encodes the header into the first [`REQUEST_HEADER_BYTES`] of a
    /// frame payload.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.req_id.to_le_bytes());
        out.push(self.opcode as u8);
        out.push(self.flags);
        out.extend_from_slice(&self.deadline_us.to_le_bytes());
        out.extend_from_slice(&self.a.to_le_bytes());
        out.extend_from_slice(&self.b.to_le_bytes());
    }

    /// Decodes a frame payload into the header and its body slice.
    pub fn decode(frame: &[u8]) -> Option<(RequestHeader, &[u8])> {
        if frame.len() < REQUEST_HEADER_BYTES {
            return None;
        }
        let opcode = Opcode::from_u8(frame[8])?;
        Some((
            RequestHeader {
                req_id: u64::from_le_bytes(frame[0..8].try_into().ok()?),
                opcode,
                flags: frame[9],
                deadline_us: u32::from_le_bytes(frame[10..14].try_into().ok()?),
                a: u64::from_le_bytes(frame[14..22].try_into().ok()?),
                b: u32::from_le_bytes(frame[22..26].try_into().ok()?),
            },
            &frame[REQUEST_HEADER_BYTES..],
        ))
    }
}

/// The fixed header opening every response frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseHeader {
    /// Echo of the request's id.
    pub req_id: u64,
    /// Outcome.
    pub status: Status,
}

impl ResponseHeader {
    /// Encodes the header into the first [`RESPONSE_HEADER_BYTES`] of a
    /// frame payload.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.req_id.to_le_bytes());
        out.push(self.status as u8);
    }

    /// Decodes a frame payload into the header and its body slice.
    pub fn decode(frame: &[u8]) -> Option<(ResponseHeader, &[u8])> {
        if frame.len() < RESPONSE_HEADER_BYTES {
            return None;
        }
        Some((
            ResponseHeader {
                req_id: u64::from_le_bytes(frame[0..8].try_into().ok()?),
                status: Status::from_u8(frame[8])?,
            },
            &frame[RESPONSE_HEADER_BYTES..],
        ))
    }
}

/// Builds a complete request frame (length prefix included).
pub fn encode_request(header: &RequestHeader, body: &[u8]) -> Vec<u8> {
    let len = REQUEST_HEADER_BYTES + body.len();
    let mut out = Vec::with_capacity(4 + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    header.encode(&mut out);
    out.extend_from_slice(body);
    out
}

/// Builds a complete response frame (length prefix included).
pub fn encode_response(header: &ResponseHeader, body: &[u8]) -> Vec<u8> {
    let len = RESPONSE_HEADER_BYTES + body.len();
    let mut out = Vec::with_capacity(4 + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    header.encode(&mut out);
    out.extend_from_slice(body);
    out
}

/// Reads one frame payload off `stream`. `Ok(None)` is a clean EOF at
/// a frame boundary; an EOF mid-frame or a length above [`MAX_FRAME`]
/// is an error.
pub fn read_frame(stream: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match stream.read(&mut len) {
        Ok(0) => return Ok(None),
        Ok(n) => stream.read_exact(&mut len[n..])?,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => stream.read_exact(&mut len)?,
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut frame = vec![0u8; len];
    stream.read_exact(&mut frame)?;
    Ok(Some(frame))
}

/// Writes one pre-encoded frame (from [`encode_request`] /
/// [`encode_response`]) to `stream`.
pub fn write_frame(stream: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    stream.write_all(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let header = RequestHeader {
            req_id: 0xDEAD_BEEF_1234,
            opcode: Opcode::Write,
            flags: 0,
            deadline_us: 1500,
            a: 42,
            b: 0,
        };
        let frame = encode_request(&header, b"payload");
        assert_eq!(
            u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize,
            frame.len() - 4
        );
        let (decoded, body) = RequestHeader::decode(&frame[4..]).unwrap();
        assert_eq!(decoded, header);
        assert_eq!(body, b"payload");
    }

    #[test]
    fn response_round_trips() {
        let header = ResponseHeader {
            req_id: 7,
            status: Status::Deadline,
        };
        let frame = encode_response(&header, b"too late");
        let (decoded, body) = ResponseHeader::decode(&frame[4..]).unwrap();
        assert_eq!(decoded, header);
        assert_eq!(body, b"too late");
    }

    #[test]
    fn unknown_opcode_and_status_reject() {
        assert_eq!(Opcode::from_u8(0), None);
        assert_eq!(Opcode::from_u8(99), None);
        assert_eq!(Status::from_u8(200), None);
        let mut bad = vec![0u8; REQUEST_HEADER_BYTES];
        bad[8] = 250;
        assert!(RequestHeader::decode(&bad).is_none());
        assert!(RequestHeader::decode(&bad[..10]).is_none());
    }

    #[test]
    fn frame_reader_enforces_the_cap_and_eof_rules() {
        // Clean EOF at a boundary.
        let mut empty: &[u8] = &[];
        assert!(read_frame(&mut empty).unwrap().is_none());
        // Oversized announcement.
        let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
        let mut stream: &[u8] = &huge;
        assert_eq!(
            read_frame(&mut stream).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Truncated mid-frame.
        let mut torn: &[u8] = &[10, 0, 0, 0, 1, 2, 3];
        assert_eq!(
            read_frame(&mut torn).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // A whole frame round-trips.
        let frame = encode_request(
            &RequestHeader {
                req_id: 1,
                opcode: Opcode::Read,
                flags: 0,
                deadline_us: 0,
                a: 0,
                b: 512,
            },
            &[],
        );
        let mut stream: &[u8] = &frame;
        let payload = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(payload.len(), REQUEST_HEADER_BYTES);
    }

    #[test]
    fn idempotence_classification() {
        assert!(Opcode::Read.idempotent());
        assert!(Opcode::Write.idempotent());
        assert!(!Opcode::FailDisk.idempotent());
        assert!(!Opcode::StartRebuild.idempotent());
        assert!(!Opcode::Shutdown.idempotent());
    }
}
