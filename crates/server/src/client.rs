//! Synchronous fault-tolerant client.
//!
//! One [`Client`] is one session with one request outstanding at a
//! time (drive many clients from many threads for pipelining — that is
//! what the server's per-session caps are scoped for). The fault
//! tolerance lives in the request path: a broken socket triggers
//! reconnect with capped exponential backoff plus seeded jitter, a
//! fresh `HELLO` resuming the same session, and a re-issue of the
//! interrupted request under its original `req_id` — safe because data
//! ops are idempotent and the server replays recorded outcomes for the
//! rest. `Overloaded` responses are retried the same way (nothing
//! executed server-side); `Deadline` and other typed failures are
//! returned to the caller, who owns that policy.

use std::io::{self, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::protocol::{encode_request, read_frame, Opcode, RequestHeader, ResponseHeader, Status};

/// Tunables for [`Client::connect`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Session identity; reconnects resume it. Pick distinct ids for
    /// distinct logical clients.
    pub session_id: u64,
    /// Per-request latency budget in microseconds for data ops
    /// (read/write/flush); 0 = none. Admin ops never carry a deadline.
    pub deadline_us: u32,
    /// Reconnect attempts per request before giving up.
    pub max_reconnects: u32,
    /// First reconnect/overload backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// `Overloaded` retries per request before surfacing the error.
    pub max_overload_retries: u32,
    /// Seed for backoff jitter.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            session_id: 1,
            deadline_us: 0,
            max_reconnects: 8,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(250),
            max_overload_retries: 64,
            seed: 0x5EED,
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection could not be (re-)established within the
    /// configured attempts; the last socket error is attached.
    Disconnected(io::Error),
    /// The server answered with a non-`Ok` status.
    Server {
        /// The typed status.
        status: Status,
        /// The server's explanatory body text.
        message: String,
    },
    /// The peer violated the wire protocol.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Disconnected(e) => write!(f, "disconnected: {e}"),
            ClientError::Server { status, message } => {
                write!(f, "server replied {status:?}: {message}")
            }
            ClientError::Protocol(reason) => write!(f, "protocol violation: {reason}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// The typed status, when the failure is a server reply.
    pub fn status(&self) -> Option<Status> {
        match self {
            ClientError::Server { status, .. } => Some(*status),
            _ => None,
        }
    }
}

/// Convenience alias for client results.
pub type ClientResult<T> = Result<T, ClientError>;

/// A sessioned connection to a block server.
#[derive(Debug)]
pub struct Client {
    addr: String,
    cfg: ClientConfig,
    stream: Option<TcpStream>,
    next_req: u64,
    rng: u64,
    epoch: u64,
    reconnects: u64,
    overload_backoffs: u64,
}

impl Client {
    /// Connects and performs the `HELLO` handshake.
    ///
    /// # Errors
    ///
    /// Fails if no connection could be established within the
    /// configured reconnect budget.
    pub fn connect(addr: &str, cfg: ClientConfig) -> ClientResult<Client> {
        let mut client = Client {
            addr: addr.to_string(),
            rng: cfg.seed | 1,
            cfg,
            stream: None,
            next_req: 1,
            epoch: 0,
            reconnects: 0,
            overload_backoffs: 0,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// The session epoch from the most recent `HELLO` — 1 on the first
    /// connection, +1 per reconnect (across all clients of this id).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Reconnects this client has performed after its initial connect.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Times this client backed off and retried an `Overloaded` reply.
    pub fn overload_backoffs(&self) -> u64 {
        self.overload_backoffs
    }

    /// Changes the data-op deadline for subsequent requests.
    pub fn set_deadline_us(&mut self, deadline_us: u32) {
        self.cfg.deadline_us = deadline_us;
    }

    /// Reads `len` bytes from block address `block`.
    ///
    /// # Errors
    ///
    /// See [`ClientError`]; `Deadline` surfaces as a `Server` error.
    pub fn read_blocks(&mut self, block: u64, len: u32) -> ClientResult<Vec<u8>> {
        self.request(Opcode::Read, self.cfg.deadline_us, block, len, &[])
    }

    /// Writes `data` at block address `block`.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn write_blocks(&mut self, block: u64, data: &[u8]) -> ClientResult<()> {
        self.request(Opcode::Write, self.cfg.deadline_us, block, 0, data)
            .map(drop)
    }

    /// Durably flushes acknowledged writes.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn flush(&mut self) -> ClientResult<()> {
        self.request(Opcode::Flush, self.cfg.deadline_us, 0, 0, &[])
            .map(drop)
    }

    /// Admin: fails `disk`.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn fail_disk(&mut self, disk: u16) -> ClientResult<()> {
        self.request(Opcode::FailDisk, 0, disk as u64, 0, &[])
            .map(drop)
    }

    /// Admin: installs a replacement for the failed disk.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn replace_disk(&mut self) -> ClientResult<()> {
        self.request(Opcode::ReplaceDisk, 0, 0, 0, &[]).map(drop)
    }

    /// Admin: rebuilds online with `threads` workers; returns the JSON
    /// rebuild report.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn rebuild(&mut self, threads: usize) -> ClientResult<String> {
        self.request(Opcode::StartRebuild, 0, threads as u64, 0, &[])
            .map(into_text)
    }

    /// Admin: scrubs the array; returns the JSON scrub report.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn scrub(&mut self, repair: bool) -> ClientResult<String> {
        self.request(Opcode::Scrub, 0, repair as u64, 0, &[])
            .map(into_text)
    }

    /// Admin: fetches the server's `StoreStats` JSON.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn stats(&mut self) -> ClientResult<String> {
        self.request(Opcode::Stats, 0, 0, 0, &[]).map(into_text)
    }

    /// Admin: begins a graceful server shutdown.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn shutdown_server(&mut self) -> ClientResult<()> {
        self.request(Opcode::Shutdown, 0, 0, 0, &[]).map(drop)
    }

    /// One request → response exchange, reconnecting and retrying
    /// through socket failures and `Overloaded` sheds.
    fn request(
        &mut self,
        opcode: Opcode,
        deadline_us: u32,
        a: u64,
        b: u32,
        body: &[u8],
    ) -> ClientResult<Vec<u8>> {
        let req_id = self.next_req;
        self.next_req += 1;
        let header = RequestHeader {
            req_id,
            opcode,
            flags: 0,
            deadline_us,
            a,
            b,
        };
        let frame = encode_request(&header, body);
        let mut reconnects = 0u32;
        let mut overloads = 0u32;
        loop {
            self.ensure_connected()?;
            match self.exchange(&frame, req_id) {
                Ok((status, out)) => match status {
                    Status::Ok => return Ok(out),
                    Status::Overloaded if overloads < self.cfg.max_overload_retries => {
                        // Nothing executed server-side: back off, retry.
                        overloads += 1;
                        self.overload_backoffs += 1;
                        let delay = self.backoff(overloads);
                        std::thread::sleep(delay);
                    }
                    status => {
                        return Err(ClientError::Server {
                            status,
                            message: String::from_utf8_lossy(&out).into_owned(),
                        })
                    }
                },
                Err(e) => {
                    // Socket died mid-exchange. Idempotent ops re-issue
                    // freely; non-idempotent ones re-issue under the
                    // same req_id and the server replays the recorded
                    // outcome if the first send actually executed.
                    self.stream = None;
                    reconnects += 1;
                    if reconnects > self.cfg.max_reconnects {
                        return Err(ClientError::Disconnected(e));
                    }
                    let delay = self.backoff(reconnects);
                    std::thread::sleep(delay);
                }
            }
        }
    }

    /// Sends one encoded frame and reads the matching response.
    fn exchange(&mut self, frame: &[u8], req_id: u64) -> io::Result<(Status, Vec<u8>)> {
        let stream = self
            .stream
            .as_mut()
            .expect("ensure_connected ran before exchange");
        stream.write_all(frame)?;
        let response = read_frame(stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-request",
            )
        })?;
        let Some((header, body)) = ResponseHeader::decode(&response) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unparseable response header",
            ));
        };
        if header.req_id != req_id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "response for request {} while awaiting {req_id}",
                    header.req_id
                ),
            ));
        }
        Ok((header.status, body.to_vec()))
    }

    /// Establishes the socket and performs `HELLO`, with capped
    /// jittered backoff between attempts.
    fn ensure_connected(&mut self) -> ClientResult<()> {
        if self.stream.is_some() {
            return Ok(());
        }
        let mut last_err: Option<io::Error> = None;
        for attempt in 0..=self.cfg.max_reconnects {
            if attempt > 0 {
                let delay = self.backoff(attempt);
                std::thread::sleep(delay);
            }
            match self.try_handshake() {
                Ok(()) => {
                    if self.epoch > 1 || last_err.is_some() {
                        self.reconnects += 1;
                    }
                    return Ok(());
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(ClientError::Disconnected(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::NotConnected, "no connection attempt made")
        })))
    }

    fn try_handshake(&mut self) -> io::Result<()> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true)?;
        let hello = encode_request(
            &RequestHeader {
                req_id: 0,
                opcode: Opcode::Hello,
                flags: 0,
                deadline_us: 0,
                a: self.cfg.session_id,
                b: 0,
            },
            &[],
        );
        stream.write_all(&hello)?;
        let response = read_frame(&mut stream)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed during HELLO",
            )
        })?;
        let Some((header, body)) = ResponseHeader::decode(&response) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unparseable HELLO response",
            ));
        };
        if header.status != Status::Ok || body.len() != 8 {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("HELLO rejected with {:?}", header.status),
            ));
        }
        self.epoch = u64::from_le_bytes(body.try_into().unwrap_or_default());
        self.stream = Some(stream);
        Ok(())
    }

    /// Exponential backoff for the `attempt`-th retry, capped, with
    /// ±50% seeded jitter so a thundering herd of clients decorrelates.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let base = self.cfg.backoff_base.as_micros() as u64;
        let cap = self.cfg.backoff_cap.as_micros() as u64;
        let exp = base.saturating_mul(1u64 << attempt.min(16)).min(cap.max(1));
        // xorshift64 jitter in [exp/2, exp].
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let half = (exp / 2).max(1);
        Duration::from_micros(half + self.rng % half)
    }
}

fn into_text(body: Vec<u8>) -> String {
    String::from_utf8_lossy(&body).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_and_jittered() {
        let mut client = Client {
            addr: String::new(),
            cfg: ClientConfig {
                backoff_base: Duration::from_millis(10),
                backoff_cap: Duration::from_millis(100),
                ..ClientConfig::default()
            },
            stream: None,
            next_req: 1,
            rng: 99 | 1,
            epoch: 0,
            reconnects: 0,
            overload_backoffs: 0,
        };
        let mut seen = Vec::new();
        for attempt in 1..12 {
            let d = client.backoff(attempt);
            assert!(d <= Duration::from_millis(100), "cap respected: {d:?}");
            assert!(d >= Duration::from_millis(5), "at least half the base");
            seen.push(d);
        }
        // Jitter: late attempts all sit at the cap tier but must not
        // be identical.
        let tail = &seen[6..];
        assert!(tail.iter().any(|d| d != &tail[0]), "jitter varies delays");
    }

    #[test]
    fn connect_to_nowhere_fails_typed_and_bounded() {
        let cfg = ClientConfig {
            max_reconnects: 1,
            backoff_base: Duration::from_micros(100),
            backoff_cap: Duration::from_micros(200),
            ..ClientConfig::default()
        };
        // Port 1 on loopback: nothing listens there.
        let err = Client::connect("127.0.0.1:1", cfg).unwrap_err();
        assert!(matches!(err, ClientError::Disconnected(_)), "{err}");
    }
}
