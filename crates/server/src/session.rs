//! Session state and admission control.
//!
//! A *session* is the unit of client identity, not the TCP connection:
//! the client picks a 64-bit session id and every connection opens with
//! a `HELLO` naming it, so a reconnect resumes the same session. The
//! session carries the two things that must survive a dropped socket —
//! the replay cache of non-idempotent outcomes (a retried `FAIL_DISK`
//! must observe the first execution's result, not run twice) and the
//! per-session in-flight count that bounds pipelining.
//!
//! Admission is ticket-based: a request is either *admitted* — it holds
//! a [`Ticket`] until its response is handed to the connection writer —
//! or it is refused up front with `Overloaded`. Tickets release on drop,
//! so a connection dying mid-request can never leak capacity: the job
//! still completes in a worker and the ticket drops with it.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::protocol::Status;

/// Locks ignoring poison: a panicked holder is a bug, but strangling
/// every other connection on it would turn one bug into an outage.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A recorded outcome of a completed non-idempotent request, replayed
/// verbatim if the client re-issues the same `req_id` after a
/// reconnect.
#[derive(Debug, Clone)]
pub(crate) struct Recorded {
    /// The status the operation actually produced.
    pub status: Status,
    /// The body that went (or would have gone) with it.
    pub body: Vec<u8>,
}

/// Bounded per-session memory of non-idempotent outcomes.
#[derive(Debug)]
struct ReplayCache {
    order: VecDeque<u64>,
    by_id: HashMap<u64, Recorded>,
    cap: usize,
}

impl ReplayCache {
    fn new(cap: usize) -> ReplayCache {
        ReplayCache {
            order: VecDeque::with_capacity(cap),
            by_id: HashMap::with_capacity(cap),
            cap,
        }
    }

    fn record(&mut self, req_id: u64, outcome: Recorded) {
        if self.by_id.insert(req_id, outcome).is_none() {
            self.order.push_back(req_id);
            while self.order.len() > self.cap {
                if let Some(evicted) = self.order.pop_front() {
                    self.by_id.remove(&evicted);
                }
            }
        }
    }

    fn get(&self, req_id: u64) -> Option<Recorded> {
        self.by_id.get(&req_id).cloned()
    }
}

/// One client session (possibly spanning many connections). The
/// client-chosen id is the [`SessionTable`] key.
#[derive(Debug)]
pub(crate) struct Session {
    /// How many connections have opened this session.
    epoch: AtomicU64,
    /// Requests admitted and not yet answered.
    in_flight: AtomicUsize,
    replay: Mutex<ReplayCache>,
}

impl Session {
    /// Current connection epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Records the outcome of a completed non-idempotent request.
    pub fn record_outcome(&self, req_id: u64, status: Status, body: &[u8]) {
        lock(&self.replay).record(
            req_id,
            Recorded {
                status,
                body: body.to_vec(),
            },
        );
    }

    /// Looks up a previously recorded outcome for `req_id`.
    pub fn recorded_outcome(&self, req_id: u64) -> Option<Recorded> {
        lock(&self.replay).get(req_id)
    }
}

/// The live session registry. Sessions are never expired: the id space
/// is client-chosen and the per-session state is bounded, so a server's
/// lifetime worth of distinct clients is cheap to keep.
#[derive(Debug)]
pub(crate) struct SessionTable {
    sessions: Mutex<HashMap<u64, Arc<Session>>>,
    replay_cap: usize,
}

impl SessionTable {
    pub fn new(replay_cap: usize) -> SessionTable {
        SessionTable {
            sessions: Mutex::new(HashMap::new()),
            replay_cap,
        }
    }

    /// Opens or resumes the session `id`, bumping its epoch.
    pub fn resume(&self, id: u64) -> Arc<Session> {
        let mut sessions = lock(&self.sessions);
        let session = sessions
            .entry(id)
            .or_insert_with(|| {
                Arc::new(Session {
                    epoch: AtomicU64::new(0),
                    in_flight: AtomicUsize::new(0),
                    replay: Mutex::new(ReplayCache::new(self.replay_cap)),
                })
            })
            .clone();
        session.epoch.fetch_add(1, Ordering::Relaxed);
        session
    }

    /// Number of distinct sessions ever opened.
    pub fn len(&self) -> usize {
        lock(&self.sessions).len()
    }
}

/// Global + per-session in-flight caps.
#[derive(Debug)]
pub(crate) struct Admission {
    global: AtomicUsize,
    global_cap: usize,
    session_cap: usize,
}

impl Admission {
    pub fn new(global_cap: usize, session_cap: usize) -> Admission {
        Admission {
            global: AtomicUsize::new(0),
            global_cap: global_cap.max(1),
            session_cap: session_cap.max(1),
        }
    }

    /// Requests admitted across all sessions and not yet answered.
    pub fn in_flight(&self) -> usize {
        self.global.load(Ordering::Acquire)
    }

    /// Tries to admit one request on `session`. `None` means shed it
    /// with `Overloaded` — nothing was reserved.
    pub fn try_admit(self: &Arc<Self>, session: &Arc<Session>) -> Option<Ticket> {
        // Per-session first: a single pipelining-happy client must hit
        // its own cap before it can touch the shared one.
        if !try_bump(&session.in_flight, self.session_cap) {
            return None;
        }
        if !try_bump(&self.global, self.global_cap) {
            session.in_flight.fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        Some(Ticket {
            admission: Arc::clone(self),
            session: Arc::clone(session),
        })
    }
}

/// CAS-increments `counter` unless it already sits at `cap`.
fn try_bump(counter: &AtomicUsize, cap: usize) -> bool {
    let mut current = counter.load(Ordering::Relaxed);
    loop {
        if current >= cap {
            return false;
        }
        match counter.compare_exchange_weak(
            current,
            current + 1,
            Ordering::AcqRel,
            Ordering::Relaxed,
        ) {
            Ok(_) => return true,
            Err(now) => current = now,
        }
    }
}

/// An admitted request's reserved capacity; releases on drop.
#[derive(Debug)]
pub(crate) struct Ticket {
    admission: Arc<Admission>,
    session: Arc<Session>,
}

impl Drop for Ticket {
    fn drop(&mut self) {
        self.admission.global.fetch_sub(1, Ordering::AcqRel);
        self.session.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resume_bumps_epoch_and_keeps_identity() {
        let table = SessionTable::new(8);
        let a = table.resume(7);
        assert_eq!(a.epoch(), 1);
        let b = table.resume(7);
        assert_eq!(b.epoch(), 2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(table.len(), 1);
        table.resume(8);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn caps_enforce_and_tickets_release() {
        let admission = Arc::new(Admission::new(3, 2));
        let table = SessionTable::new(8);
        let s1 = table.resume(1);
        let s2 = table.resume(2);
        let t1 = admission.try_admit(&s1).unwrap();
        let t2 = admission.try_admit(&s1).unwrap();
        // Session cap: s1 is full, and the refusal reserves nothing.
        assert!(admission.try_admit(&s1).is_none());
        assert_eq!(admission.in_flight(), 2);
        // Global cap: one slot left, shared.
        let t3 = admission.try_admit(&s2).unwrap();
        assert!(admission.try_admit(&s2).is_none());
        drop(t2);
        // Released capacity is reusable by anyone under their own cap.
        let t4 = admission.try_admit(&s2).unwrap();
        drop((t1, t3, t4));
        assert_eq!(admission.in_flight(), 0);
    }

    #[test]
    fn replay_cache_is_bounded_and_verbatim() {
        let table = SessionTable::new(2);
        let s = table.resume(1);
        s.record_outcome(10, Status::Ok, b"first");
        s.record_outcome(11, Status::Invalid, b"second");
        let hit = s.recorded_outcome(11).unwrap();
        assert_eq!(hit.status, Status::Invalid);
        assert_eq!(hit.body, b"second");
        // Third entry evicts the oldest.
        s.record_outcome(12, Status::Ok, b"third");
        assert!(s.recorded_outcome(10).is_none());
        assert!(s.recorded_outcome(11).is_some());
        // Re-recording the same id does not evict.
        s.record_outcome(12, Status::Ok, b"third again");
        assert!(s.recorded_outcome(11).is_some());
        assert_eq!(s.recorded_outcome(12).unwrap().body, b"third again");
    }
}
