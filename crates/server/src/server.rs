//! The TCP block server.
//!
//! Thread shape: one accept thread, one reader + one writer thread per
//! connection, and a fixed pool of executor workers shared by every
//! connection. Readers do no I/O against the store — they parse,
//! admission-check, and enqueue; workers execute against the shared
//! [`BlockStore`] and hand the encoded response to the owning
//! connection's writer channel. A connection dying at any point leaves
//! nothing stuck: its jobs still run, their tickets release on drop,
//! and their responses fail harmlessly into the closed channel.
//!
//! Degradation guarantees (the reason this crate exists):
//!
//! * **Deadlines** — a request carrying a `deadline_us` budget is
//!   answered with [`Status::Deadline`] if the budget expires while it
//!   is queued *or* while it is executing. The reply is immediate at
//!   the next check point; the server never goes silent on a request.
//! * **Admission** — past the global or per-session in-flight cap, or
//!   past the executor queue's high watermark, requests are refused
//!   with [`Status::Overloaded`] before any store work happens. The
//!   accept loop never stalls on a slow store.
//! * **Drain** — shutdown (RPC or [`Server::stop`]) flips the server
//!   into draining: new requests get [`Status::ShuttingDown`], admitted
//!   ones complete and their responses flush before sockets close.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use decluster_store::{BlockStore, RebuildReport, ScrubReport, StoreError, BLOCK_BYTES};

use crate::protocol::{
    encode_response, read_frame, Opcode, RequestHeader, ResponseHeader, Status, MAX_FRAME,
    RESPONSE_HEADER_BYTES,
};
use crate::session::{lock, Admission, Session, SessionTable, Ticket};

/// Tunables for [`Server::spawn`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; the default asks the OS for a free port on
    /// loopback ([`Server::addr`] reports what it got).
    pub addr: String,
    /// Executor worker threads shared by all connections.
    pub workers: usize,
    /// Global in-flight request cap across every session.
    pub global_inflight: usize,
    /// Per-session in-flight cap — the pipelining bound one client can
    /// reach regardless of how idle the rest of the server is.
    pub session_inflight: usize,
    /// Executor queue depth past which admitted-but-unqueued requests
    /// are shed with `Overloaded` even below the in-flight caps.
    pub queue_high: usize,
    /// Non-idempotent outcomes remembered per session for replay.
    pub replay_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            global_inflight: 256,
            session_inflight: 32,
            queue_high: 512,
            replay_cap: 1024,
        }
    }
}

const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;

/// One admitted request travelling from a reader to a worker.
struct Job {
    session: Arc<Session>,
    ticket: Ticket,
    header: RequestHeader,
    body: Vec<u8>,
    received: Instant,
    reply: Sender<Vec<u8>>,
}

struct Shared {
    store: Arc<BlockStore>,
    cfg: ServerConfig,
    addr: SocketAddr,
    sessions: SessionTable,
    admission: Arc<Admission>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    state: AtomicU8,
    /// Socket clones of live connections, for shutdown and
    /// [`Server::disconnect_all`].
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    handler_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn state(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }

    /// Flips running → draining (idempotent) and pokes the accept loop
    /// awake with a throwaway connection so it can observe the flip.
    fn begin_drain(&self) {
        if self
            .state
            .compare_exchange(RUNNING, DRAINING, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            let _ = TcpStream::connect(self.addr);
        }
    }

    fn queue_len(&self) -> usize {
        lock(&self.queue).len()
    }
}

/// A running block server. Dropping the handle abandons the threads;
/// call [`Server::stop`] for an orderly drain and store close.
pub struct Server {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept loop and worker pool, and returns.
    ///
    /// # Errors
    ///
    /// Fails if the listener cannot bind.
    pub fn spawn(store: Arc<BlockStore>, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            sessions: SessionTable::new(cfg.replay_cap),
            admission: Arc::new(Admission::new(cfg.global_inflight, cfg.session_inflight)),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            state: AtomicU8::new(RUNNING),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            handler_threads: Mutex::new(Vec::new()),
            store,
            addr,
            cfg,
        });
        let worker_threads = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(&accept_shared, &listener));
        Ok(Server {
            shared,
            accept_thread: Some(accept_thread),
            worker_threads,
        })
    }

    /// The bound address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Whether a shutdown has begun (RPC or [`Server::begin_shutdown`]).
    pub fn draining(&self) -> bool {
        self.shared.state() != RUNNING
    }

    /// Starts a graceful shutdown without waiting for it.
    pub fn begin_shutdown(&self) {
        self.shared.begin_drain();
    }

    /// Blocks until a shutdown has begun (e.g. via the RPC).
    pub fn wait_for_shutdown(&self) {
        while !self.draining() {
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Requests admitted and not yet answered, across all sessions.
    pub fn in_flight(&self) -> usize {
        self.shared.admission.in_flight()
    }

    /// Distinct sessions ever opened.
    pub fn sessions(&self) -> usize {
        self.shared.sessions.len()
    }

    /// Severs every live connection at the socket (sessions survive;
    /// clients are expected to reconnect and resume). Exists for
    /// fault-tolerance tests and for operators chasing a stuck peer.
    pub fn disconnect_all(&self) {
        for stream in lock(&self.shared.conns).values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    /// Drains and stops the server: in-flight requests complete and
    /// their responses flush, then sockets close, threads join, and —
    /// if this handle holds the last reference — the store is closed
    /// cleanly (flushed otherwise).
    ///
    /// # Errors
    ///
    /// Returns the store's close/flush error, if any. Server threads
    /// are torn down regardless.
    pub fn stop(mut self) -> decluster_store::Result<()> {
        self.shared.begin_drain();
        // Drain: admitted work finishes. Generously bounded so a
        // wedged disk cannot hang an operator's shutdown forever.
        let drain_deadline = Instant::now() + Duration::from_secs(60);
        while (self.shared.admission.in_flight() > 0 || self.shared.queue_len() > 0)
            && Instant::now() < drain_deadline
        {
            std::thread::sleep(Duration::from_millis(1));
        }
        self.shared.state.store(STOPPED, Ordering::Release);
        self.queue_cv_notify_all();
        for worker in self.worker_threads.drain(..) {
            let _ = worker.join();
        }
        // Close sockets to kick idle readers, then join the handlers;
        // their writers have already flushed every drained response.
        self.disconnect_all();
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        // Again, now that the accept loop can no longer register a
        // connection behind our back.
        self.disconnect_all();
        let handlers: Vec<JoinHandle<()>> = lock(&self.shared.handler_threads).drain(..).collect();
        for handler in handlers {
            let _ = handler.join();
        }
        let shared = Arc::clone(&self.shared);
        drop(self);
        match Arc::try_unwrap(shared) {
            Ok(shared) => match Arc::try_unwrap(shared.store) {
                Ok(store) => store.close(),
                Err(store) => store.flush(),
            },
            Err(shared) => shared.store.flush(),
        }
    }

    fn queue_cv_notify_all(&self) {
        let _guard = lock(&self.shared.queue);
        self.shared.queue_cv.notify_all();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if shared.state() != RUNNING {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            lock(&shared.conns).insert(conn_id, clone);
        }
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::spawn(move || {
            handle_connection(&conn_shared, stream, conn_id);
            lock(&conn_shared.conns).remove(&conn_id);
        });
        lock(&shared.handler_threads).push(handle);
    }
}

/// Sends `status`/`body` for `req_id` down the connection's writer
/// channel; a dead connection is not an error.
fn send(reply: &Sender<Vec<u8>>, req_id: u64, status: Status, body: &[u8]) {
    let frame = encode_response(&ResponseHeader { req_id, status }, body);
    let _ = reply.send(frame);
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream, _conn_id: u64) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let (tx, rx) = channel::<Vec<u8>>();
    let writer = std::thread::spawn(move || {
        let mut out = BufWriter::new(write_half);
        while let Ok(frame) = rx.recv() {
            if out.write_all(&frame).is_err() {
                break;
            }
            // Greedily coalesce whatever else is already queued into
            // one flush.
            let mut dead = false;
            while let Ok(next) = rx.try_recv() {
                if out.write_all(&next).is_err() {
                    dead = true;
                    break;
                }
            }
            if dead || out.flush().is_err() {
                break;
            }
        }
        // Drain and drop late responses so senders never block.
        while rx.recv().is_ok() {}
    });

    let session = run_reader(shared, &mut reader, &tx);
    drop(session);
    drop(tx);
    let _ = writer.join();
}

/// The per-connection read loop: HELLO handshake, then parse → check →
/// admit → enqueue until EOF or a fatal protocol error.
fn run_reader(
    shared: &Arc<Shared>,
    reader: &mut impl io::Read,
    tx: &Sender<Vec<u8>>,
) -> Option<Arc<Session>> {
    // The handshake: first frame must be HELLO naming the session.
    let first = match read_frame(reader) {
        Ok(Some(frame)) => frame,
        _ => return None,
    };
    let Some((header, _)) = RequestHeader::decode(&first) else {
        send(tx, 0, Status::Malformed, b"unparseable first frame");
        return None;
    };
    if header.opcode != Opcode::Hello {
        send(
            tx,
            header.req_id,
            Status::Malformed,
            b"first request must be HELLO",
        );
        return None;
    }
    let session = shared.sessions.resume(header.a);
    send(
        tx,
        header.req_id,
        Status::Ok,
        &session.epoch().to_le_bytes(),
    );

    loop {
        let frame = match read_frame(reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => break,
            Err(_) => break,
        };
        let received = Instant::now();
        let Some((header, body)) = RequestHeader::decode(&frame) else {
            // The length prefix kept us frame-aligned, so one bad
            // request does not poison the stream: answer and continue.
            let req_id = frame
                .get(0..8)
                .map(|b| u64::from_le_bytes(b.try_into().unwrap_or_default()))
                .unwrap_or(0);
            send(tx, req_id, Status::Malformed, b"unparseable request header");
            continue;
        };
        if header.opcode == Opcode::Hello {
            // A repeated HELLO is a cheap liveness probe.
            send(
                tx,
                header.req_id,
                Status::Ok,
                &session.epoch().to_le_bytes(),
            );
            continue;
        }
        if shared.state() != RUNNING {
            send(
                tx,
                header.req_id,
                Status::ShuttingDown,
                b"server is draining",
            );
            continue;
        }
        if !header.opcode.idempotent() {
            if let Some(recorded) = session.recorded_outcome(header.req_id) {
                send(tx, header.req_id, recorded.status, &recorded.body);
                continue;
            }
        }
        let Some(ticket) = shared.admission.try_admit(&session) else {
            send(
                tx,
                header.req_id,
                Status::Overloaded,
                b"in-flight cap reached",
            );
            continue;
        };
        {
            let mut queue = lock(&shared.queue);
            if queue.len() >= shared.cfg.queue_high {
                drop(queue);
                drop(ticket);
                send(
                    tx,
                    header.req_id,
                    Status::Overloaded,
                    b"executor queue full",
                );
                continue;
            }
            queue.push_back(Job {
                session: Arc::clone(&session),
                ticket,
                header,
                body: body.to_vec(),
                received,
                reply: tx.clone(),
            });
        }
        shared.queue_cv.notify_one();
    }
    Some(session)
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.state() == STOPPED {
                    return;
                }
                queue = match shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                {
                    Ok((guard, _)) => guard,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        };
        run_job(shared, job);
    }
}

fn run_job(shared: &Arc<Shared>, job: Job) {
    let Job {
        session,
        ticket,
        header,
        body,
        received,
        reply,
    } = job;
    let due = (header.deadline_us > 0)
        .then(|| received + Duration::from_micros(header.deadline_us as u64));
    if due.is_some_and(|due| Instant::now() > due) {
        send(
            &reply,
            header.req_id,
            Status::Deadline,
            b"deadline expired while queued; not executed",
        );
        drop(ticket);
        return;
    }
    let (status, out) = if header.opcode == Opcode::Shutdown {
        shared.begin_drain();
        (Status::Ok, b"draining".to_vec())
    } else {
        execute(&shared.store, &header, &body)
    };
    // Record *before* the late-reply decision: if the deadline expired
    // mid-execution the op still ran, and a client retry must replay
    // this outcome rather than execute again.
    if !header.opcode.idempotent() {
        session.record_outcome(header.req_id, status, &out);
    }
    if due.is_some_and(|due| Instant::now() > due) {
        send(
            &reply,
            header.req_id,
            Status::Deadline,
            b"deadline expired during execution; outcome recorded for replay",
        );
    } else {
        send(&reply, header.req_id, status, &out);
    }
    drop(ticket);
}

/// Executes one data/admin request against the store.
fn execute(store: &BlockStore, header: &RequestHeader, body: &[u8]) -> (Status, Vec<u8>) {
    let block_bytes = BLOCK_BYTES as usize;
    match header.opcode {
        Opcode::Read => {
            let len = header.b as usize;
            if len == 0 || !len.is_multiple_of(block_bytes) {
                return invalid("read length must be a positive multiple of the block size");
            }
            if len + RESPONSE_HEADER_BYTES > MAX_FRAME {
                return invalid("read length exceeds the frame cap");
            }
            let blocks = (len / block_bytes) as u64;
            if header.a + blocks > store.block_count() {
                return invalid("read range past end of device");
            }
            let mut buf = vec![0u8; len];
            match store.read_blocks(header.a, &mut buf) {
                Ok(()) => (Status::Ok, buf),
                Err(e) => store_error(&e),
            }
        }
        Opcode::Write => {
            if body.is_empty() || !body.len().is_multiple_of(block_bytes) {
                return invalid("write body must be a positive multiple of the block size");
            }
            let blocks = (body.len() / block_bytes) as u64;
            if header.a + blocks > store.block_count() {
                return invalid("write range past end of device");
            }
            match store.write_blocks(header.a, body) {
                Ok(()) => (Status::Ok, Vec::new()),
                Err(e) => store_error(&e),
            }
        }
        Opcode::Flush => match store.flush() {
            Ok(()) => (Status::Ok, Vec::new()),
            Err(e) => store_error(&e),
        },
        Opcode::FailDisk => match store.fail_disk(header.a as u16) {
            Ok(()) => (Status::Ok, Vec::new()),
            Err(e) => store_error(&e),
        },
        Opcode::ReplaceDisk => match store.replace_disk() {
            Ok(()) => (Status::Ok, Vec::new()),
            Err(e) => store_error(&e),
        },
        Opcode::StartRebuild => match store.rebuild(header.a as usize) {
            Ok(report) => (Status::Ok, rebuild_json(&report).into_bytes()),
            Err(e) => store_error(&e),
        },
        Opcode::Scrub => match store.scrub(header.a != 0) {
            Ok(report) => (Status::Ok, scrub_json(&report).into_bytes()),
            Err(e) => store_error(&e),
        },
        Opcode::Stats => (Status::Ok, store.stats_snapshot().to_json().into_bytes()),
        // Hello and Shutdown are handled before execute().
        Opcode::Hello | Opcode::Shutdown => invalid("unexpected opcode"),
    }
}

fn invalid(reason: &str) -> (Status, Vec<u8>) {
    (Status::Invalid, reason.as_bytes().to_vec())
}

/// Maps a store error onto the wire: storage-layer failures (I/O,
/// exhausted redundancy) are `Media`; preconditions and bad arguments
/// are `Invalid`. The body is the error's display text either way.
fn store_error(error: &StoreError) -> (Status, Vec<u8>) {
    let status = match error {
        StoreError::Media { .. } | StoreError::Io { .. } => Status::Media,
        _ => Status::Invalid,
    };
    (status, error.to_string().into_bytes())
}

fn rebuild_json(report: &RebuildReport) -> String {
    let list = |values: &[u64]| {
        let mut out = String::from("[");
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&v.to_string());
        }
        out.push(']');
        out
    };
    let failed = |disks: &[u16]| {
        let mut out = String::from("[");
        for (i, v) in disks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&v.to_string());
        }
        out.push(']');
        out
    };
    format!(
        "{{\"failed_disk\":{},\"failed_disks\":{},\"units_rebuilt\":{},\
         \"units_already_valid\":{},\
         \"units_unmapped\":{},\"alpha\":{:.6},\"wall_secs\":{:.6},\
         \"disk_reads\":{},\"disk_writes\":{},\"mapped_units_per_disk\":{}}}",
        report.failed_disks.first().map_or(-1, |d| i64::from(*d)),
        failed(&report.failed_disks),
        report.units_rebuilt,
        report.units_already_valid,
        report.units_unmapped,
        report.alpha,
        report.wall_secs,
        list(&report.disk_reads),
        list(&report.disk_writes),
        list(&report.mapped_units_per_disk),
    )
}

fn scrub_json(report: &ScrubReport) -> String {
    format!(
        "{{\"units_scanned\":{},\"media_errors\":{},\"checksum_errors\":{},\
         \"repaired\":{},\"escalated\":{}}}",
        report.units_scanned,
        report.media_errors,
        report.checksum_errors,
        report.repaired,
        report.escalated,
    )
}
