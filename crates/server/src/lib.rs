//! Network block service over `decluster-store`: continuous operation,
//! now with actual concurrent clients.
//!
//! The paper's thesis is that a declustered array keeps serving users
//! at acceptable performance *while* disks fail and rebuild. This crate
//! is where that claim meets traffic: a long-running TCP server
//! ([`Server`]) wraps one shared [`decluster_store::BlockStore`] behind
//! a compact length-prefixed binary protocol ([`protocol`]) with
//! per-connection sessions, bounded pipelining, per-request deadlines,
//! and admission control — so an operator can fail a disk, install a
//! replacement, and rebuild online over admin RPCs while data requests
//! keep flowing, and every client sees typed degradation
//! ([`protocol::Status`]) instead of hangs or dropped connections.
//!
//! [`Client`] is the matching fault-tolerant synchronous client:
//! reconnect with capped jittered backoff, session resumption, and safe
//! re-issue of interrupted requests (the server's per-session replay
//! cache makes even non-idempotent admin retries exact-once in effect).
//!
//! The wire protocol, session/deadline/admission state machines, and
//! drain-on-shutdown semantics are documented in `DESIGN.md` §13.

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
mod server;
mod session;

pub use client::{Client, ClientConfig, ClientError, ClientResult};
pub use protocol::{Opcode, Status};
pub use server::{Server, ServerConfig};
