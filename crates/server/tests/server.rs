//! End-to-end server robustness: round trips, deadlines, admission
//! control, graceful degradation under admin faults, reconnect with
//! session resumption, replayed non-idempotent retries, malformed
//! input, and drain-on-shutdown.

use decluster_server::protocol::{
    encode_request, read_frame, Opcode, RequestHeader, ResponseHeader, Status,
};
use decluster_server::{Client, ClientConfig, ClientError, Server, ServerConfig};
use decluster_store::checksum::region_bytes;
use decluster_store::{
    BlockStore, DiskBackend, FaultPlan, FaultyBackend, FileBackend, LatencyProfile, LayoutSpec,
    BLOCK_BYTES, SUPERBLOCK_BYTES,
};
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DISKS: u16 = 5;
const SPEC: LayoutSpec = LayoutSpec::Complete { disks: 5, group: 4 };
const UNITS_PER_DISK: u64 = 36;
const UNIT_BYTES: usize = 1024;

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("decluster-server-tests")
        .join(format!("{name}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

fn make_store(name: &str) -> (PathBuf, Arc<BlockStore>) {
    let dir = fresh_dir(name);
    let store = BlockStore::create(&dir, SPEC, UNITS_PER_DISK, UNIT_BYTES as u32, 0x5EA1).unwrap();
    (dir, Arc::new(store))
}

/// A store whose disks all answer reads through the given latency
/// profile — the deterministic way to make requests slow.
fn slow_store(name: &str, profile: LatencyProfile) -> (PathBuf, Arc<BlockStore>) {
    let dir = fresh_dir(name);
    let plans: Vec<Arc<FaultPlan>> = (0..DISKS)
        .map(|i| FaultPlan::new(0x51_0000 + i as u64 * 2))
        .collect();
    let data_start = SUPERBLOCK_BYTES + region_bytes(UNITS_PER_DISK);
    for p in &plans {
        p.set_protect_below(data_start);
        p.set_read_latency(profile);
    }
    let factory = |i: u16, file: std::fs::File| -> Box<dyn DiskBackend> {
        Box::new(FaultyBackend::new(
            Box::new(FileBackend::new(file)),
            Arc::clone(&plans[i as usize]),
        ))
    };
    let store = BlockStore::create_with_backend(
        &dir,
        SPEC,
        UNITS_PER_DISK,
        UNIT_BYTES as u32,
        0x5EA2,
        &factory,
    )
    .unwrap();
    (dir, Arc::new(store))
}

fn block_content(block: u64, tag: u64) -> Vec<u8> {
    (0..BLOCK_BYTES as usize)
        .map(|i| {
            (block
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(tag.wrapping_mul(0xBF58_476D_1CE4_E5B9))
                .wrapping_add(i as u64)
                >> 7) as u8
        })
        .collect()
}

fn client(server: &Server, session_id: u64) -> Client {
    Client::connect(
        &server.addr().to_string(),
        ClientConfig {
            session_id,
            ..ClientConfig::default()
        },
    )
    .unwrap()
}

/// Raw-socket helper: HELLO then return the stream, for tests that
/// need to pipeline or misbehave below the `Client` abstraction.
fn raw_hello(server: &Server, session_id: u64) -> TcpStream {
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let hello = encode_request(
        &RequestHeader {
            req_id: 0,
            opcode: Opcode::Hello,
            flags: 0,
            deadline_us: 0,
            a: session_id,
            b: 0,
        },
        &[],
    );
    stream.write_all(&hello).unwrap();
    let frame = read_frame(&mut stream).unwrap().unwrap();
    let (header, _) = ResponseHeader::decode(&frame).unwrap();
    assert_eq!(header.status, Status::Ok);
    stream
}

fn raw_request(
    stream: &mut TcpStream,
    req_id: u64,
    opcode: Opcode,
    deadline_us: u32,
    a: u64,
    b: u32,
    body: &[u8],
) {
    let frame = encode_request(
        &RequestHeader {
            req_id,
            opcode,
            flags: 0,
            deadline_us,
            a,
            b,
        },
        body,
    );
    stream.write_all(&frame).unwrap();
}

fn raw_response(stream: &mut TcpStream) -> (ResponseHeader, Vec<u8>) {
    let frame = read_frame(stream).unwrap().unwrap();
    let (header, body) = ResponseHeader::decode(&frame).unwrap();
    (header, body.to_vec())
}

#[test]
fn round_trip_flush_stats_and_clean_shutdown() {
    let (dir, store) = make_store("round-trip");
    let server = Server::spawn(Arc::clone(&store), ServerConfig::default()).unwrap();
    drop(store); // the server owns the last reference → clean close on stop
    let mut c = client(&server, 11);
    assert_eq!(c.epoch(), 1);

    let blocks = 64u64;
    for b in 0..blocks {
        c.write_blocks(b, &block_content(b, 1)).unwrap();
    }
    // Multi-block extent write + read.
    let extent: Vec<u8> = (8..16).flat_map(|b| block_content(b, 2)).collect();
    c.write_blocks(8, &extent).unwrap();
    for b in 0..blocks {
        let tag = if (8..16).contains(&b) { 2 } else { 1 };
        assert_eq!(
            c.read_blocks(b, BLOCK_BYTES).unwrap(),
            block_content(b, tag)
        );
    }
    let got = c.read_blocks(8, 8 * BLOCK_BYTES).unwrap();
    assert_eq!(got, extent);
    c.flush().unwrap();

    let stats = c.stats().unwrap();
    assert!(stats.contains("\"disks\":5"), "{stats}");
    assert!(stats.contains("\"degraded\":false"), "{stats}");
    assert!(stats.contains("\"per_disk\":["), "{stats}");

    // Out-of-range and misaligned requests are typed, not fatal.
    let err = c.read_blocks(u64::MAX - 1, BLOCK_BYTES).unwrap_err();
    assert_eq!(err.status(), Some(Status::Invalid));
    let err = c.write_blocks(0, &[1u8; 100]).unwrap_err();
    assert_eq!(err.status(), Some(Status::Invalid));
    // The connection survived both.
    assert_eq!(c.read_blocks(0, BLOCK_BYTES).unwrap(), block_content(0, 1));

    // Graceful shutdown: the RPC is acknowledged, later requests are
    // refused typed, and the store lands clean on disk.
    c.shutdown_server().unwrap();
    let err = c.read_blocks(0, BLOCK_BYTES).unwrap_err();
    assert_eq!(err.status(), Some(Status::ShuttingDown));
    server.stop().unwrap();
    let (reopened, recovery) = BlockStore::open(&dir).unwrap();
    assert!(recovery.is_none(), "clean close must skip crash recovery");
    let mut buf = vec![0u8; BLOCK_BYTES as usize];
    reopened.read_blocks(0, &mut buf).unwrap();
    assert_eq!(buf, block_content(0, 1));
    reopened.close().unwrap();
}

#[test]
fn expired_deadline_yields_typed_error_never_a_hang() {
    // Every disk answers reads ~25ms late; a 2ms budget cannot be met.
    let (_dir, store) = slow_store("deadline", LatencyProfile::limping(25_000, 5_000));
    let server = Server::spawn(Arc::clone(&store), ServerConfig::default()).unwrap();
    let mut c = client(&server, 21);
    c.write_blocks(0, &block_content(0, 1)).unwrap();

    c.set_deadline_us(2_000);
    let started = Instant::now();
    let err = c.read_blocks(0, BLOCK_BYTES).unwrap_err();
    assert_eq!(err.status(), Some(Status::Deadline), "{err}");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "a missed deadline must answer promptly, not hang"
    );

    // Without a deadline the same read succeeds — slow is not broken.
    c.set_deadline_us(0);
    assert_eq!(c.read_blocks(0, BLOCK_BYTES).unwrap(), block_content(0, 1));
    server.stop().unwrap();
}

#[test]
fn overload_sheds_excess_and_completes_admitted() {
    let (_dir, store) = slow_store("overload", LatencyProfile::limping(30_000, 0));
    let server = Server::spawn(
        Arc::clone(&store),
        ServerConfig {
            workers: 1,
            global_inflight: 2,
            session_inflight: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    // Seed one block through a patient client.
    let mut seed_client = client(&server, 31);
    seed_client.write_blocks(0, &block_content(0, 1)).unwrap();

    // Pipeline 8 reads in one burst: the two in-flight slots admit two
    // of them, the rest must be shed immediately with Overloaded.
    let mut stream = raw_hello(&server, 32);
    for req_id in 1..=8u64 {
        raw_request(&mut stream, req_id, Opcode::Read, 0, 0, BLOCK_BYTES, &[]);
    }
    let mut ok = 0;
    let mut overloaded = 0;
    for _ in 0..8 {
        let (header, body) = raw_response(&mut stream);
        match header.status {
            Status::Ok => {
                ok += 1;
                assert_eq!(body, block_content(0, 1), "admitted reads return real data");
            }
            Status::Overloaded => overloaded += 1,
            other => panic!("unexpected status {other:?}"),
        }
    }
    assert_eq!(ok, 2, "exactly the admitted requests complete");
    assert_eq!(overloaded, 6, "everything past the cap is shed");

    // Capacity is released: a fresh request succeeds.
    assert_eq!(
        seed_client.read_blocks(0, BLOCK_BYTES).unwrap(),
        block_content(0, 1)
    );
    server.stop().unwrap();
}

#[test]
fn fail_disk_mid_traffic_drops_no_sessions() {
    let (_dir, store) = make_store("fail-mid-traffic");
    let block_count = store.block_count();
    let server = Server::spawn(Arc::clone(&store), ServerConfig::default()).unwrap();
    drop(store);
    let addr = server.addr().to_string();

    const CLIENTS: u64 = 4;
    let span = block_count / CLIENTS;
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|w| {
                let addr = addr.clone();
                let stop = &stop;
                s.spawn(move || {
                    let mut c = Client::connect(
                        &addr,
                        ClientConfig {
                            session_id: 100 + w,
                            ..ClientConfig::default()
                        },
                    )
                    .unwrap();
                    let lo = w * span;
                    let mut rounds = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Acquire) || rounds < 2 {
                        rounds += 1;
                        for b in lo..lo + span {
                            c.write_blocks(b, &block_content(b, rounds)).unwrap();
                            let got = c.read_blocks(b, BLOCK_BYTES).unwrap();
                            assert_eq!(got, block_content(b, rounds));
                        }
                        if rounds > 256 {
                            break;
                        }
                    }
                    assert_eq!(c.reconnects(), 0, "no session drop during degradation");
                    rounds
                })
            })
            .collect();

        // The operator fails a disk under live traffic, then brings the
        // array back — all over the same protocol.
        let mut admin = Client::connect(
            &addr,
            ClientConfig {
                session_id: 999,
                ..ClientConfig::default()
            },
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        admin.fail_disk(2).unwrap();
        let stats = admin.stats().unwrap();
        assert!(stats.contains("\"degraded\":true"), "{stats}");
        assert!(stats.contains("\"failed_disk\":2"), "{stats}");
        std::thread::sleep(Duration::from_millis(30));
        admin.replace_disk().unwrap();
        let report = admin.rebuild(2).unwrap();
        assert!(report.contains("\"failed_disk\":2"), "{report}");
        let stats = admin.stats().unwrap();
        assert!(stats.contains("\"degraded\":false"), "{stats}");
        stop.store(true, std::sync::atomic::Ordering::Release);
        for w in workers {
            assert!(w.join().unwrap() >= 2);
        }
    });
    server.stop().unwrap();
}

#[test]
fn reconnect_resumes_the_session_and_replays_admin_outcomes() {
    let (_dir, store) = make_store("reconnect");
    let server = Server::spawn(Arc::clone(&store), ServerConfig::default()).unwrap();
    let mut c = client(&server, 41);
    c.write_blocks(0, &block_content(0, 1)).unwrap();
    assert_eq!(c.epoch(), 1);

    // Sever every socket server-side; the client's next call must
    // transparently reconnect and resume.
    server.disconnect_all();
    c.write_blocks(1, &block_content(1, 1)).unwrap();
    assert!(c.reconnects() >= 1, "the drop was observed and healed");
    assert_eq!(c.epoch(), 2, "same session, next epoch");
    assert_eq!(c.read_blocks(0, BLOCK_BYTES).unwrap(), block_content(0, 1));

    // Replay protection for non-idempotent retries: FAIL_DISK executed
    // once, then the same req_id re-issued over a fresh connection gets
    // the recorded Ok — not "already degraded".
    let mut raw = raw_hello(&server, 55);
    raw_request(&mut raw, 7, Opcode::FailDisk, 0, 3, 0, &[]);
    let (header, _) = raw_response(&mut raw);
    assert_eq!(header.status, Status::Ok);
    drop(raw);
    let mut raw = raw_hello(&server, 55);
    raw_request(&mut raw, 7, Opcode::FailDisk, 0, 3, 0, &[]);
    let (header, _) = raw_response(&mut raw);
    assert_eq!(header.status, Status::Ok, "recorded outcome is replayed");
    // A *new* req_id really executes and hits the precondition.
    raw_request(&mut raw, 8, Opcode::FailDisk, 0, 3, 0, &[]);
    let (header, body) = raw_response(&mut raw);
    assert_eq!(header.status, Status::Invalid);
    assert!(
        String::from_utf8_lossy(&body).contains("already failed"),
        "the second execution sees the already-failed disk"
    );
    server.stop().unwrap();
}

#[test]
fn malformed_frames_are_answered_and_survivable() {
    let (_dir, store) = make_store("malformed");
    let server = Server::spawn(Arc::clone(&store), ServerConfig::default()).unwrap();

    // A connection whose first frame is not HELLO is refused.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    raw_request(&mut stream, 1, Opcode::Stats, 0, 0, 0, &[]);
    let (header, _) = raw_response(&mut stream);
    assert_eq!(header.status, Status::Malformed);

    // After a good HELLO, an unknown opcode is answered Malformed and
    // the connection keeps working.
    let mut stream = raw_hello(&server, 61);
    let mut bogus = encode_request(
        &RequestHeader {
            req_id: 9,
            opcode: Opcode::Stats,
            flags: 0,
            deadline_us: 0,
            a: 0,
            b: 0,
        },
        &[],
    );
    bogus[4 + 8] = 250; // overwrite the opcode byte with garbage
    stream.write_all(&bogus).unwrap();
    let (header, _) = raw_response(&mut stream);
    assert_eq!(header.req_id, 9);
    assert_eq!(header.status, Status::Malformed);
    raw_request(&mut stream, 10, Opcode::Stats, 0, 0, 0, &[]);
    let (header, body) = raw_response(&mut stream);
    assert_eq!(header.status, Status::Ok);
    assert!(String::from_utf8_lossy(&body).contains("\"disks\":5"));
    server.stop().unwrap();
}

#[test]
fn draining_server_completes_admitted_work() {
    // Slow reads so a request is still in flight when the drain begins.
    let (_dir, store) = slow_store("drain", LatencyProfile::limping(40_000, 0));
    let server = Server::spawn(Arc::clone(&store), ServerConfig::default()).unwrap();
    let mut c = client(&server, 71);
    c.write_blocks(0, &block_content(0, 1)).unwrap();

    // Pipeline: one slow read, then SHUTDOWN right behind it.
    let mut stream = raw_hello(&server, 72);
    raw_request(&mut stream, 1, Opcode::Read, 0, 0, BLOCK_BYTES, &[]);
    raw_request(&mut stream, 2, Opcode::Shutdown, 0, 0, 0, &[]);
    let mut saw_read = false;
    let mut saw_shutdown = false;
    for _ in 0..2 {
        let (header, body) = raw_response(&mut stream);
        match header.req_id {
            1 => {
                assert_eq!(header.status, Status::Ok, "admitted work completes");
                assert_eq!(body, block_content(0, 1));
                saw_read = true;
            }
            2 => {
                assert_eq!(header.status, Status::Ok);
                saw_shutdown = true;
            }
            other => panic!("unexpected req_id {other}"),
        }
    }
    assert!(saw_read && saw_shutdown);
    // New work is refused typed while the drain runs.
    let err = c.read_blocks(0, BLOCK_BYTES).unwrap_err();
    assert_eq!(err.status(), Some(Status::ShuttingDown));
    assert!(server.draining());
    server.stop().unwrap();
}

#[test]
fn client_surfaces_exhausted_reconnects_typed() {
    let cfg = ClientConfig {
        max_reconnects: 1,
        backoff_base: Duration::from_micros(200),
        backoff_cap: Duration::from_millis(1),
        ..ClientConfig::default()
    };
    let err = Client::connect("127.0.0.1:1", cfg).unwrap_err();
    assert!(matches!(err, ClientError::Disconnected(_)));
}
