//! Continuous operation, end to end: the lifecycle the paper's title
//! promises. A healthy array loses a disk *mid-run* (in-flight accesses
//! retried), serves its full workload degraded, gets a replacement,
//! rebuilds online while still serving users, and returns to fault-free
//! service — with the response-time story of each phase and the rebuild
//! trajectory printed along the way.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example continuous_operation
//! ```

use decluster::array::{ArrayConfig, ArraySim, ReconAlgorithm, ReconOptions};
use decluster::experiments::paper_layout;
use decluster::sim::SimTime;
use decluster::workload::WorkloadSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ArrayConfig::scaled(118);
    let spec = WorkloadSpec::half_and_half(105.0);
    let g = 4;
    println!("Continuous operation on the paper's array (G = {g}, alpha = 0.15):\n");

    // Phase 1+2: healthy service, then disk 7 dies at t = 20 s. Every
    // request in flight at the instant of failure is retried under the
    // degraded state; none is lost.
    let mut sim = ArraySim::new(paper_layout(g)?, cfg, spec, 1)?;
    sim.fail_disk_at(7, SimTime::from_secs(20))
        .expect("disk is healthy and in range");
    let transition = sim.run_for(SimTime::from_secs(60), SimTime::from_secs(2));
    println!(
        "[0-60s]   disk 7 fails at t=20s mid-run: {} requests served, mean {:.1} ms",
        transition.requests_measured,
        transition.ops.all.mean_ms()
    );

    // Phase 3: a replacement arrives; 8-way rebuild with redirection while
    // the workload continues.
    let mut sim = ArraySim::new(paper_layout(g)?, cfg, spec, 2)?;
    sim.fail_disk(7).expect("disk is healthy and in range");
    sim.start_reconstruction(ReconOptions::new(ReconAlgorithm::Redirect).processes(8))
        .expect("a disk failed and processes > 0");
    let rebuild = sim.run_until_reconstructed(SimTime::from_secs(100_000));
    let recon_secs = rebuild.reconstruction_secs().expect("rebuild completes");
    println!(
        "[rebuild] replacement installed: rebuilt {} units in {:.0} s, users saw {:.1} ms",
        rebuild.units_total,
        recon_secs,
        rebuild.ops.all.mean_ms()
    );

    // The rebuild trajectory as a sparkline (10% buckets).
    let mut line = String::from("          progress ");
    for decile in 1..=10 {
        let target = decile as f64 / 10.0;
        let t = rebuild
            .progress
            .iter()
            .find(|&&(_, f)| f >= target)
            .map(|&(s, _)| s)
            .unwrap_or(recon_secs);
        line.push_str(&format!("{:>3.0}% @ {t:>5.1}s  ", target * 100.0));
        if decile == 5 {
            line.push_str("\n          progress ");
        }
    }
    println!("{line}");

    // Phase 4: fault-free again.
    let healthy = ArraySim::new(paper_layout(g)?, cfg, spec, 3)?
        .run_for(SimTime::from_secs(40), SimTime::from_secs(4));
    println!(
        "[after]   back to fault-free service: mean {:.1} ms\n",
        healthy.ops.all.mean_ms()
    );

    println!("No request was ever refused: that is the continuous-operation guarantee");
    println!("parity declustering makes affordable.");
    Ok(())
}
