//! One-off validation at full disk capacity: single-thread baseline
//! reconstruction at 105 accesses/s for alpha = 0.15 and RAID 5, compared
//! with the paper's Figure 8-1 (~60 minutes fastest, ~2x gap).

use decluster::array::{ArrayConfig, ArraySim, ReconAlgorithm, ReconOptions};
use decluster::experiments::paper_layout;
use decluster::sim::SimTime;
use decluster::workload::WorkloadSpec;

fn main() {
    for g in [4u16, 21] {
        let mut s = ArraySim::new(
            paper_layout(g).expect("paper group sizes build"),
            ArrayConfig::paper(),
            WorkloadSpec::half_and_half(105.0),
            1,
        )
        .unwrap();
        s.fail_disk(0).expect("disk is healthy and in range");
        s.start_reconstruction(ReconOptions::new(ReconAlgorithm::Baseline))
            .expect("a disk failed and processes > 0");
        let r = s.run_until_reconstructed(SimTime::from_secs(100_000));
        println!(
            "G={g}: recon {:.0} s ({:.1} min), user {:.1} ms",
            r.reconstruction_secs().unwrap_or(f64::NAN),
            r.reconstruction_secs().unwrap_or(f64::NAN) / 60.0,
            r.ops.all.mean_ms()
        );
    }
}
