//! Degraded-mode tour: how much does a dead disk hurt, as a function of
//! the declustering ratio? (The experiment behind Figures 6-1 and 6-2.)
//!
//! For each α in the paper's sweep, runs the array fault-free and with one
//! failed (unreplaced) disk under 100 %-read and 100 %-write workloads and
//! prints the response-time penalty. Shows the paper's two observations:
//! the read penalty shrinks with α, and degraded *writes* at low α can be
//! cheaper than fault-free writes (lost parity ⇒ one access instead of
//! four).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example degraded_mode
//! ```

use decluster::experiments::{fig6, ExperimentScale};

fn main() {
    let scale = ExperimentScale {
        cylinders: 118,
        duration_secs: 40,
        warmup_secs: 4,
        ..ExperimentScale::smoke()
    };
    println!("Degraded-mode penalty across the alpha sweep (105 accesses/s)\n");

    for (mix, name) in [(1.0, "100% reads"), (0.0, "100% writes")] {
        println!("-- {name} --");
        println!(
            "{:>6} {:>4} {:>15} {:>14} {:>9}",
            "alpha", "G", "fault-free(ms)", "degraded(ms)", "penalty"
        );
        for (g, alpha) in decluster::experiments::alpha_sweep() {
            let p = fig6::run_point(&scale, g, 105.0, mix).expect("paper group sizes build");
            println!(
                "{:>6.2} {:>4} {:>15.1} {:>14.1} {:>8.0}%",
                alpha,
                g,
                p.fault_free_ms,
                p.degraded_ms,
                (p.degraded_ms / p.fault_free_ms - 1.0) * 100.0
            );
        }
        println!();
    }
    println!("Reads: on-the-fly reconstruction touches G-1 disks, so the penalty grows");
    println!("with alpha. Writes: when the parity disk is the dead one the write costs a");
    println!("single access, which at low alpha can make degraded mode *faster*.");
}
