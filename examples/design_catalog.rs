//! Design catalog: the paper's six appendix block designs, verified, plus
//! the Figure 4-3 scatter of every design the catalog can construct.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example design_catalog
//! ```

use decluster::core::design::{appendix, catalog};
use decluster::experiments::{fig4, render};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== The paper's appendix designs (21-disk array) ==\n");
    println!(
        "{:>3} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8}",
        "G", "b", "r", "lambda", "alpha", "overhead", "table"
    );
    for g in appendix::PAPER_GROUP_SIZES {
        let d = appendix::design_for_group_size(g)?;
        let p = d.params();
        println!(
            "{:>3} {:>6} {:>6} {:>6} {:>6.2} {:>7.0}% {:>8}",
            g,
            p.b,
            p.r,
            p.lambda,
            p.alpha(),
            100.0 / g as f64,
            p.b * g as u64, // full block design table, in stripes
        );
    }
    println!("\n'table' = parity stripes per full block design table (G copies of b tuples).\n");

    println!("== A sample design in full: G = 5 (the projective plane of order 4) ==\n");
    print!("{}", appendix::design_for_group_size(5)?);
    println!();

    // The paper's infeasibility example: 41 disks at 20% parity overhead.
    println!("== The paper's 41-disk example ==\n");
    match catalog::find(41, 5) {
        Ok(d) => println!("found: {}", d.params()),
        Err(e) => {
            println!("direct lookup fails as the paper predicts: {e}");
            let (d, g) = catalog::closest_group_size(41, 5)?;
            println!(
                "closest feasible design point: G = {g} -> {} (alpha = {:.2})",
                d.params(),
                d.params().alpha()
            );
        }
    }
    println!();

    let points = fig4::figure_4_3(43, 10_000);
    println!("{}", render::fig4_scatter(&points, 43));
    println!("{} constructible designs with v <= 43.", points.len());
    Ok(())
}
