//! Layout explorer: prints the paper's layout figures as tables and
//! validates the layout criteria for every configuration the paper uses.
//!
//! Reproduces Figure 2-1 (left-symmetric RAID 5), Figure 4-1 (the complete
//! block design), Figures 2-3/4-2 (the declustered layout and its full
//! block design table), and the criteria report for the whole α sweep.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example layout_explorer
//! ```

use decluster::core::design::BlockDesign;
use decluster::core::layout::{
    criteria, spec, tabular, LayoutSpec, ParityLayout, TabularLayout, UnitRole,
};
use decluster::experiments::{alpha_sweep, paper_layout};

/// Renders one table of a layout as the paper draws them: rows = offsets,
/// columns = disks, cells like `D3.1` or `P4`.
fn render_table(layout: &dyn ParityLayout, rows: u64) -> String {
    let mut out = String::new();
    out.push_str("Offset");
    for d in 0..layout.disks() {
        out.push_str(&format!(" {:>6}", format!("DISK{d}")));
    }
    out.push('\n');
    for offset in 0..rows {
        out.push_str(&format!("{offset:>6}"));
        for disk in 0..layout.disks() {
            let cell = match layout.role_at(disk, offset) {
                UnitRole::Data { stripe, index } => format!("D{stripe}.{index}"),
                UnitRole::Parity { stripe, index: 0 } => format!("P{stripe}"),
                UnitRole::Parity { stripe, .. } => format!("Q{stripe}"),
                UnitRole::Unmapped => "-".to_string(),
            };
            out.push_str(&format!(" {cell:>6}"));
        }
        out.push('\n');
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Figure 2-1: left-symmetric RAID 5, C = G = 5 ==");
    let raid5 = "raid5:c5".parse::<LayoutSpec>()?.build()?;
    println!("{}", render_table(raid5.as_ref(), 5));

    println!("== Figure 4-1: complete block design, b=5, v=5, k=4 ==");
    let design = BlockDesign::complete(5, 4)?;
    print!("{design}");
    println!();

    println!("== Figure 2-3: declustered layout, C = 5, G = 4 (first table) ==");
    let decl = "complete:c5g4".parse::<LayoutSpec>()?.build()?;
    println!("{}", render_table(decl.as_ref(), 4));

    println!("== Figure 4-2: the full block design table (parity rotates) ==");
    println!("{}", render_table(decl.as_ref(), decl.table_height()));

    println!("== P+Q double-fault tolerance: pq:c5g4 (Q rotates with P) ==");
    let pq = "pq:c5g4".parse::<LayoutSpec>()?.build()?;
    println!("{}", render_table(pq.as_ref(), 4));

    println!("== The layout registry ==");
    for family in spec::registry() {
        println!(
            "{:>9}  {}  (e.g. {})",
            family.name,
            family.summary,
            family.examples.join(", ")
        );
    }
    println!();

    println!("== Layout criteria for the paper's 21-disk sweep ==");
    println!(
        "{:>3} {:>6} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "G", "alpha", "criteria", "pair const", "parity/disk", "table rows", "parallel"
    );
    for (g, alpha) in alpha_sweep() {
        let layout = paper_layout(g)?;
        let report = criteria::check(layout.as_ref());
        println!(
            "{:>3} {:>6.2} {:>10} {:>12} {:>12} {:>12} {:>10}",
            g,
            alpha,
            if report.all_hold() {
                "1-3 hold"
            } else {
                "VIOLATED"
            },
            report
                .distributed_reconstruction
                .as_ref()
                .map(|v| v.to_string())
                .unwrap_or_else(|e| e.to_string()),
            report
                .distributed_parity
                .as_ref()
                .map(|v| v.to_string())
                .unwrap_or_else(|e| e.to_string()),
            report.table_height,
            report.sequential_parallelism,
        );
    }
    println!();
    println!("'pair const' = stripes shared by any two disks per full table (lambda*G);");
    println!("'parallel' = distinct disks touched by C sequential units (criterion 6 —");
    println!("left-symmetric RAID 5 reaches C; the paper's declustered mapping does not).");

    println!();
    println!("== Portable layout table (decluster-layout v1, first lines) ==");
    let text = tabular::export(decl.as_ref());
    for line in text.lines().take(10) {
        println!("{line}");
    }
    println!("...");
    let parsed: TabularLayout = text.parse()?;
    assert!(criteria::check(&parsed).all_hold());
    println!(
        "round-trip parse OK: {} stripes re-verified against criteria 1-3",
        parsed.stripes_per_table()
    );
    Ok(())
}
