//! Rebuild race: the paper's four reconstruction algorithms head-to-head.
//!
//! Fails disk 0 of the 21-disk array, installs a replacement, and rebuilds
//! under each algorithm with one and with eight reconstruction processes,
//! printing reconstruction time and user response time — the trade-off
//! space of the paper's Section 8, including its surprise: with parallel
//! reconstruction and low α, the *simplest* algorithms win.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example rebuild_race [alpha]
//! ```
//!
//! where `alpha` is one of 0.1, 0.15, 0.2, 0.25, 0.45, 0.85, 1.0
//! (default 0.15).

use decluster::array::{ArrayConfig, ArraySim, ReconAlgorithm, ReconOptions};
use decluster::experiments::{alpha_sweep, paper_layout};
use decluster::sim::SimTime;
use decluster::workload::WorkloadSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let want_alpha: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(0.15);
    let (g, alpha) = alpha_sweep()
        .into_iter()
        .min_by(|a, b| {
            (a.1 - want_alpha)
                .abs()
                .total_cmp(&(b.1 - want_alpha).abs())
        })
        .expect("sweep is nonempty");

    let cfg = ArrayConfig::scaled(118);
    let spec = WorkloadSpec::half_and_half(105.0);
    println!("Rebuild race: 21 disks, G = {g} (alpha = {alpha:.2}), 105 accesses/s, 50% reads");
    println!("(shrunken disks: absolute times are ~1/8 of full-capacity runs)\n");

    for processes in [1usize, 8] {
        println!("-- {processes} reconstruction process(es) --");
        println!(
            "{:<20} {:>12} {:>14} {:>14} {:>12}",
            "algorithm", "rebuild (s)", "user mean(ms)", "user p90(ms)", "user-built"
        );
        for algorithm in ReconAlgorithm::ALL {
            let mut sim = ArraySim::new(paper_layout(g)?, cfg, spec, 1)?;
            sim.fail_disk(0).expect("disk is healthy and in range");
            sim.start_reconstruction(ReconOptions::new(algorithm).processes(processes))
                .expect("a disk failed and processes > 0");
            let report = sim.run_until_reconstructed(SimTime::from_secs(100_000));
            println!(
                "{:<20} {:>12.1} {:>14.1} {:>14.1} {:>12}",
                algorithm.name(),
                report.reconstruction_secs().unwrap_or(f64::NAN),
                report.ops.all.mean_ms(),
                report.ops.all.percentile_ms(0.9),
                report.units_by_users,
            );
        }
        println!();
    }
    println!("'user-built' counts units rebuilt by user writes / piggybacked reads");
    println!("rather than by the background sweep.");
    Ok(())
}
