//! Trace record and replay: capture a request stream, store it as text,
//! and replay it bit-exactly — including under a skewed (80/20) locality
//! model, an extension beyond the paper's uniform workload.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use decluster::array::{ArrayConfig, ArraySim};
use decluster::experiments::paper_layout;
use decluster::sim::SimTime;
use decluster::workload::trace::Trace;
use decluster::workload::{Locality, Workload, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ArrayConfig::scaled(60);
    let spec = WorkloadSpec::half_and_half(60.0).with_locality(Locality::eighty_twenty());

    // 1. Record a 30-second request stream from the synthetic generator.
    let data_units = ArraySim::new(paper_layout(4)?, cfg, spec, 1)?
        .mapping()
        .data_units();
    let mut generator = Workload::new(spec, data_units, 12345);
    let trace = Trace::record(&mut generator, SimTime::from_secs(30));
    println!(
        "recorded {} requests over 30 s (80/20 hot-spot, 50% reads)",
        trace.len()
    );

    // 2. Serialize to the text format and parse it back.
    let text = trace.to_string();
    println!(
        "trace serializes to {} bytes; first lines:\n{}",
        text.len(),
        text.lines().take(3).collect::<Vec<_>>().join("\n")
    );
    let parsed: Trace = text.parse()?;
    assert_eq!(parsed, trace);

    // 3. Replay into two identically configured arrays: results match
    //    exactly (the simulator is a pure function of trace + config).
    let run = |trace: Trace| -> Result<_, Box<dyn std::error::Error>> {
        Ok(ArraySim::with_trace(paper_layout(4)?, cfg, trace)?
            .run_for(SimTime::from_secs(30), SimTime::from_secs(3)))
    };
    let first = run(trace.clone())?;
    let second = run(parsed)?;
    assert_eq!(first, second);
    println!(
        "replayed twice: {} measured requests, mean response {:.1} ms (identical runs)",
        first.requests_measured,
        first.ops.all.mean_ms()
    );
    Ok(())
}
