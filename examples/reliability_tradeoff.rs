//! Reliability trade-off: the paper's Section 2 argument made concrete.
//!
//! `C` fixes how many disks can fail, `G` fixes parity overhead, and the
//! declustering ratio fixes reconstruction time — which (the paper notes,
//! citing Patterson et al.) the mean time to data loss is inversely
//! proportional to. This example measures reconstruction time for each
//! stripe width by simulation (8-way redirect at reduced scale, linearly
//! rescaled to full IBM 0661 capacity), then prints the resulting
//! overhead-vs-reliability table an administrator would use to pick `G`.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example reliability_tradeoff
//! ```

use decluster::analytic::reliability;
use decluster::array::{ArrayConfig, ArraySim, ReconAlgorithm, ReconOptions};
use decluster::experiments::{alpha_sweep, paper_layout};
use decluster::sim::SimTime;
use decluster::workload::WorkloadSpec;

/// Disk MTBF assumed for the table (hours); ~17 years, a typical spec for
/// drives of the paper's era.
const MTBF_HOURS: f64 = 150_000.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cylinders = 118u32;
    let capacity_scale = 949.0 / cylinders as f64;
    let cfg = ArrayConfig::scaled(cylinders);
    let spec = WorkloadSpec::half_and_half(105.0);

    println!("Reliability trade-off: 21 disks, MTBF {MTBF_HOURS:.0} h, 8-way redirect rebuild");
    println!("under 105 user accesses/s (repair times simulated, rescaled to full disks)\n");
    println!(
        "{:>3} {:>6} {:>9} {:>11} {:>14} {:>13}",
        "G", "alpha", "parity", "repair (h)", "MTTDL (years)", "10-yr loss"
    );

    let groups: Vec<u16> = alpha_sweep().into_iter().map(|(g, _)| g).collect();
    let table = reliability::tradeoff_table(21, MTBF_HOURS, &groups, |g| {
        let mut sim = ArraySim::new(
            paper_layout(g).expect("paper group sizes build"),
            cfg,
            spec,
            1,
        )
        .expect("paper layouts fit scaled disks");
        sim.fail_disk(0).expect("disk is healthy and in range");
        sim.start_reconstruction(ReconOptions::new(ReconAlgorithm::Redirect).processes(8))
            .expect("a disk failed and processes > 0");
        let report = sim.run_until_reconstructed(SimTime::from_secs(100_000));
        let secs = report
            .reconstruction_secs()
            .expect("rebuild completes at light load");
        secs * capacity_scale / 3_600.0
    });

    for p in &table {
        println!(
            "{:>3} {:>6.2} {:>8.0}% {:>11.2} {:>14.0} {:>12.5}%",
            p.group,
            p.alpha,
            p.parity_overhead * 100.0,
            p.repair_hours,
            p.mttdl_hours / (365.25 * 24.0),
            p.ten_year_loss * 100.0,
        );
    }

    println!();
    println!("Declustering buys reliability twice over: shorter repair windows AND less");
    println!("degradation while repairing. The cost column is the parity overhead 1/G.");
    Ok(())
}
