//! Quickstart: build the paper's declustered array, run it healthy, break
//! it, and rebuild it — printing what the paper's abstract promises: lower
//! user impact during recovery than RAID 5 at the same cluster size.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use decluster::array::{ArrayConfig, ArraySim, ReconAlgorithm, ReconOptions};
use decluster::experiments::paper_layout;
use decluster::sim::SimTime;
use decluster::workload::WorkloadSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Shrunken IBM 0661 disks so the whole demo runs in seconds; use
    // `ArrayConfig::paper()` for full-size disks.
    let cfg = ArrayConfig::scaled(118);
    let spec = WorkloadSpec::half_and_half(105.0);

    println!("decluster quickstart: 21 disks, 105 user accesses/s, 50% reads\n");

    for g in [4u16, 21] {
        let layout = paper_layout(g)?;
        println!(
            "--- G = {g} (alpha = {:.2}, parity overhead {:.0}%) {}",
            layout.alpha(),
            layout.parity_overhead() * 100.0,
            if g == 21 { "= RAID 5" } else { "declustered" },
        );

        // 1. Fault-free steady state.
        let healthy = ArraySim::new(layout.clone(), cfg, spec, 1)?
            .run_for(SimTime::from_secs(40), SimTime::from_secs(4));
        println!(
            "    fault-free:  {:6.1} ms mean response ({} requests)",
            healthy.ops.all.mean_ms(),
            healthy.requests_measured
        );

        // 2. Degraded mode: disk 0 dead, no replacement yet.
        let mut degraded_sim = ArraySim::new(layout.clone(), cfg, spec, 1)?;
        degraded_sim
            .fail_disk(0)
            .expect("disk is healthy and in range");
        let degraded = degraded_sim.run_for(SimTime::from_secs(40), SimTime::from_secs(4));
        println!(
            "    degraded:    {:6.1} ms mean response",
            degraded.ops.all.mean_ms()
        );

        // 3. Reconstruction: replacement installed, 8-way rebuild with
        //    redirection of reads.
        let mut rebuild_sim = ArraySim::new(layout, cfg, spec, 1)?;
        rebuild_sim
            .fail_disk(0)
            .expect("disk is healthy and in range");
        rebuild_sim
            .start_reconstruction(ReconOptions::new(ReconAlgorithm::Redirect).processes(8))
            .expect("a disk failed and processes > 0");
        let rebuilt = rebuild_sim.run_until_reconstructed(SimTime::from_secs(50_000));
        println!(
            "    rebuilding:  {:6.1} ms mean response, reconstructed in {:.0} s",
            rebuilt.ops.all.mean_ms(),
            rebuilt.reconstruction_secs().expect("rebuild completes"),
        );
        println!();
    }

    println!("Declustering (G=4) rebuilds faster and hurts users less than RAID 5 (G=21),");
    println!("at the price of 25% parity overhead instead of ~5%.");
    Ok(())
}
