#!/usr/bin/env sh
# Full local gate: release build, test suite, and lint-clean clippy.
# Run from the repository root: scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> campaign smoke (tiny Monte Carlo data-loss campaign + replay)"
cargo run --release -q -p decluster-bench --bin campaign -- \
    --cylinders 30 --trials 4 --out results/campaign_smoke.json
cargo run --release -q -p decluster-bench --bin campaign -- \
    --cylinders 30 --trials 4 --replay declustered-g4 0

echo "==> all checks passed"
