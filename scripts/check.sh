#!/usr/bin/env sh
# Full local gate: formatting, release build, test suite, lint-clean
# clippy, campaign smoke runs (including the scrub/crash arms, one at
# default scale), a file-backed store smoke cycle, and a network block
# service smoke (sessioned clients through fail + rebuild).
# Run from the repository root: scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> campaign smoke (tiny Monte Carlo data-loss campaign + replay, all arms)"
cargo run --release -q -p decluster-bench --bin campaign -- \
    --cylinders 30 --trials 4 \
    --out results/campaign_smoke.json
cargo run --release -q -p decluster-bench --bin campaign -- \
    --cylinders 30 --trials 4 --replay declustered-g4 0

echo "==> scrub/crash campaign smoke (arms on, output to a temp dir)"
SCRUB_SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SCRUB_SMOKE_DIR"' EXIT
cargo run --release -q -p decluster-bench --bin campaign -- \
    --cylinders 30 --trials 2 --scrub-trials 2 --crash-trials 1 \
    --out "$SCRUB_SMOKE_DIR/campaign_scrub_smoke.json"
cargo run --release -q -p decluster-bench --bin campaign -- \
    --cylinders 30 --trials 2 --scrub-trials 2 --crash-trials 1 \
    --replay-scrub declustered-g4 0 on
cargo run --release -q -p decluster-bench --bin campaign -- \
    --cylinders 30 --trials 2 --scrub-trials 2 --crash-trials 1 \
    --replay-crash declustered-g4 0

echo "==> scrub arm at default scale (regression gate for the dead-disk submit panic)"
cargo run --release -q -p decluster-bench --bin campaign -- \
    --trials 1 --scrub-trials 1 --crash-trials 0 \
    --out "$SCRUB_SMOKE_DIR/campaign_default_scale.json"
grep -q '"scrub_trials_per_layout":1' "$SCRUB_SMOKE_DIR/campaign_default_scale.json" || {
    echo "scrub arm did not run at default scale"; exit 1; }

echo "==> store smoke (mkfs / fill / fail / degraded verify / rebuild / verify / bench)"
STORE_SMOKE_DIR="$SCRUB_SMOKE_DIR/store"
cargo run --release -q -p decluster-bench --bin store -- \
    mkfs "$STORE_SMOKE_DIR" --disks 10 --group 4 --units 336 --unit-bytes 4096
cargo run --release -q -p decluster-bench --bin store -- fill "$STORE_SMOKE_DIR" --seed 5
cargo run --release -q -p decluster-bench --bin store -- verify "$STORE_SMOKE_DIR" --seed 5
cargo run --release -q -p decluster-bench --bin store -- fail "$STORE_SMOKE_DIR" 3
cargo run --release -q -p decluster-bench --bin store -- verify "$STORE_SMOKE_DIR" --seed 5
cargo run --release -q -p decluster-bench --bin store -- rebuild "$STORE_SMOKE_DIR" --threads 4
cargo run --release -q -p decluster-bench --bin store -- verify "$STORE_SMOKE_DIR" --seed 5
cargo run --release -q -p decluster-bench --bin store -- \
    bench "$STORE_SMOKE_DIR" --requests 800 --threads 4 --seed 5 \
    --max-regress 0.30 \
    --out results/store_bench.json
cargo run --release -q -p decluster-bench --bin store -- scrub "$STORE_SMOKE_DIR"

echo "==> layout registry smoke (algorithmic generators meet criteria 1-3)"
cargo run --release -q --bin decluster -- layout prime:c11g4 --check
cargo run --release -q --bin decluster -- layout rot:c13g4 --check

echo "==> P+Q store smoke (mkfs pq / fill / fail TWO disks / degraded verify / rebuild / verify)"
PQ_SMOKE_DIR="$SCRUB_SMOKE_DIR/pq-store"
cargo run --release -q -p decluster-bench --bin store -- \
    mkfs "$PQ_SMOKE_DIR" --layout pq:c10g5 --units 200 --unit-bytes 4096
cargo run --release -q -p decluster-bench --bin store -- fill "$PQ_SMOKE_DIR" --seed 9
cargo run --release -q -p decluster-bench --bin store -- fail "$PQ_SMOKE_DIR" 2
cargo run --release -q -p decluster-bench --bin store -- fail "$PQ_SMOKE_DIR" 7
cargo run --release -q -p decluster-bench --bin store -- verify "$PQ_SMOKE_DIR" --seed 9
cargo run --release -q -p decluster-bench --bin store -- rebuild "$PQ_SMOKE_DIR" --threads 4
cargo run --release -q -p decluster-bench --bin store -- verify "$PQ_SMOKE_DIR" --seed 9
cargo run --release -q -p decluster-bench --bin store -- scrub "$PQ_SMOKE_DIR"

echo "==> network block service smoke (4 clients through fill/fail/rebuild/verify)"
cargo run --release -q -p decluster-bench --bin load_gen -- \
    --smoke --out results/server_bench.json

echo "==> hostile-disk torture smoke (fixed seed, ledger + oracle gate)"
cargo run --release -q -p decluster-bench --bin torture -- \
    --smoke --seed 3512496146 --out results/torture.json

echo "==> parity XOR kernel smoke (self-check + GB/s into results/xor_bench.json)"
cargo run --release -q -p decluster-bench --bin parity_xor -- \
    --out results/xor_bench.json

echo "==> observability smoke (fig6 --trace record + bit-for-bit replay)"
TRACE_FILE="$SCRUB_SMOKE_DIR/fig6.trace"
cargo run --release -q -p decluster-bench --bin fig_6_1 -- \
    --cylinders 30 --trace "$TRACE_FILE" > /dev/null
cargo run --release -q -p decluster-bench --bin trace -- replay "$TRACE_FILE"

echo "==> probe overhead gate (NoProbe hot path must not regress)"
cargo run --release -q -p decluster-bench --bin probe_overhead

echo "==> all checks passed"
