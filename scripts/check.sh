#!/usr/bin/env sh
# Full local gate: formatting, release build, test suite, lint-clean
# clippy, and campaign smoke runs (including the scrub/crash arms).
# Run from the repository root: scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> campaign smoke (tiny Monte Carlo data-loss campaign + replay)"
cargo run --release -q -p decluster-bench --bin campaign -- \
    --cylinders 30 --trials 4 --scrub-trials 0 --crash-trials 0 \
    --out results/campaign_smoke.json
cargo run --release -q -p decluster-bench --bin campaign -- \
    --cylinders 30 --trials 4 --replay declustered-g4 0

echo "==> scrub/crash campaign smoke (arms on, output to a temp dir)"
SCRUB_SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SCRUB_SMOKE_DIR"' EXIT
cargo run --release -q -p decluster-bench --bin campaign -- \
    --cylinders 30 --trials 2 --scrub-trials 2 --crash-trials 1 \
    --out "$SCRUB_SMOKE_DIR/campaign_scrub_smoke.json"
cargo run --release -q -p decluster-bench --bin campaign -- \
    --cylinders 30 --trials 2 --scrub-trials 2 --crash-trials 1 \
    --replay-scrub declustered-g4 0 on
cargo run --release -q -p decluster-bench --bin campaign -- \
    --cylinders 30 --trials 2 --scrub-trials 2 --crash-trials 1 \
    --replay-crash declustered-g4 0

echo "==> observability smoke (fig6 --trace record + bit-for-bit replay)"
TRACE_FILE="$SCRUB_SMOKE_DIR/fig6.trace"
cargo run --release -q -p decluster-bench --bin fig_6_1 -- \
    --cylinders 30 --trace "$TRACE_FILE" > /dev/null
cargo run --release -q -p decluster-bench --bin trace -- replay "$TRACE_FILE"

echo "==> probe overhead gate (NoProbe hot path must not regress)"
cargo run --release -q -p decluster-bench --bin probe_overhead

echo "==> all checks passed"
