//! Integration tests asserting the *shapes* of the paper's headline
//! results at reduced scale — who wins, in which direction, and by
//! roughly what kind of factor. These are the claims EXPERIMENTS.md
//! tracks against the paper.

use decluster::analytic::MuntzLuiModel;
use decluster::array::{ArrayConfig, ArraySim, ReconAlgorithm, ReconOptions};
use decluster::core::layout::{tabular, TabularLayout};
use decluster::experiments::{fig6, fig8, fig86, paper_layout, ExperimentScale};
use decluster::sim::SimTime;
use decluster::workload::WorkloadSpec;
use std::sync::Arc;

fn scale() -> ExperimentScale {
    ExperimentScale::tiny()
}

#[test]
fn declustering_monotonically_softens_degraded_reads() {
    // Figure 6-1: degraded-mode read response time should rise with α
    // (more survivors touched per on-the-fly reconstruction).
    let s = scale();
    let low = fig6::run_point(&s, 4, 105.0, 1.0).unwrap();
    let mid = fig6::run_point(&s, 10, 105.0, 1.0).unwrap();
    let high = fig6::run_point(&s, 21, 105.0, 1.0).unwrap();
    assert!(
        low.degraded_ms < mid.degraded_ms && mid.degraded_ms < high.degraded_ms,
        "degraded reads not monotone in alpha: {} {} {}",
        low.degraded_ms,
        mid.degraded_ms,
        high.degraded_ms
    );
}

#[test]
fn fault_free_performance_does_not_pay_for_declustering() {
    // The paper's Section 6 claim: declustering costs nothing while
    // healthy (away from the G=3 write-optimization special case).
    let s = scale();
    for mix in [1.0, 0.0] {
        let a = fig6::run_point(&s, 4, 105.0, mix).unwrap();
        let b = fig6::run_point(&s, 21, 105.0, mix).unwrap();
        let ratio = a.fault_free_ms / b.fault_free_ms;
        assert!(
            (0.75..1.33).contains(&ratio),
            "mix {mix}: fault-free ratio {ratio}"
        );
    }
}

#[test]
fn reconstruction_time_rises_with_alpha() {
    // Figure 8-1's dominant trend under the baseline algorithm.
    let s = scale();
    let times: Vec<f64> = [4u16, 10, 21]
        .into_iter()
        .map(|g| {
            fig8::run_point(&s, g, 105.0, ReconAlgorithm::Baseline, 1)
                .unwrap()
                .recon_secs
                .expect("reconstruction completes at light load")
        })
        .collect();
    assert!(
        times[0] < times[1] && times[1] < times[2],
        "recon time not monotone in alpha: {times:?}"
    );
    // And the α=0.15 vs RAID 5 gap is substantial (paper: ~2x).
    assert!(
        times[2] / times[0] > 1.4,
        "RAID 5 {} not clearly slower than α=0.15 {}",
        times[2],
        times[0]
    );
}

#[test]
fn user_response_during_recovery_improves_with_declustering() {
    // Figure 8-2: at 105 accesses/s the paper reports ~33% lower response
    // time at α = 0.15 than RAID 5.
    let s = scale();
    let low = fig8::run_point(&s, 4, 105.0, ReconAlgorithm::Baseline, 1).unwrap();
    let high = fig8::run_point(&s, 21, 105.0, ReconAlgorithm::Baseline, 1).unwrap();
    assert!(
        low.user_ms < high.user_ms * 0.9,
        "α=0.15 response {} vs RAID 5 {}",
        low.user_ms,
        high.user_ms
    );
}

#[test]
fn eight_way_reconstruction_is_much_faster_but_degrades_response() {
    // Figures 8-3/8-4: the paper reports 4–6x faster reconstruction and
    // 35–75% worse response time. At tiny scale we accept >2x and any
    // response degradation.
    let s = scale();
    let one = fig8::run_point(&s, 10, 105.0, ReconAlgorithm::Baseline, 1).unwrap();
    let eight = fig8::run_point(&s, 10, 105.0, ReconAlgorithm::Baseline, 8).unwrap();
    let speedup = one.recon_secs.unwrap() / eight.recon_secs.unwrap();
    assert!(speedup > 2.0, "8-way speedup only {speedup}");
    assert!(
        eight.user_ms > one.user_ms,
        "8-way response {} should exceed single-thread {}",
        eight.user_ms,
        one.user_ms
    );
}

#[test]
fn simple_algorithms_win_at_low_alpha_with_parallel_reconstruction() {
    // The paper's most surprising result (Sections 8.2/9): with 8-way
    // reconstruction at low declustering ratios, baseline/user-writes
    // reconstruct faster than redirect(+piggyback) because random user
    // work on the replacement destroys the write stream's sequentiality.
    let s = scale();
    let times: Vec<(ReconAlgorithm, f64)> = ReconAlgorithm::ALL
        .into_iter()
        .map(|a| {
            (
                a,
                fig8::run_point(&s, 4, 210.0, a, 8)
                    .unwrap()
                    .recon_secs
                    .unwrap(),
            )
        })
        .collect();
    let baseline = times[0].1;
    let redirect = times[2].1;
    assert!(
        baseline <= redirect * 1.05,
        "baseline {baseline}s should not lose to redirect {redirect}s at low alpha: {times:?}"
    );
}

#[test]
fn redirect_helps_heavily_loaded_raid5_response() {
    // Section 8.2: redirection of reads buys 10–15% response-time
    // reduction in heavily-loaded RAID 5 arrays.
    let s = scale();
    let baseline = fig8::run_point(&s, 21, 210.0, ReconAlgorithm::Baseline, 1).unwrap();
    let redirect = fig8::run_point(&s, 21, 210.0, ReconAlgorithm::Redirect, 1).unwrap();
    assert!(
        redirect.user_ms < baseline.user_ms,
        "redirect {} should beat baseline {} on RAID 5 at 210/s",
        redirect.user_ms,
        baseline.user_ms
    );
}

#[test]
fn muntz_lui_model_is_pessimistic_and_orders_algorithms_differently() {
    // Figure 8-6: the single-service-rate model exceeds the simulated
    // (8-way) reconstruction time, and it ranks user-writes worse than
    // redirect — opposite to what the simulator shows at low alpha.
    let s = scale();
    let sim = fig8::run_point(&s, 4, 105.0, ReconAlgorithm::Redirect, 8)
        .unwrap()
        .recon_secs
        .unwrap();
    let model = fig86::model_for(&s, 4, 105.0)
        .reconstruction_time(ReconAlgorithm::Redirect)
        .unwrap();
    assert!(model > sim, "model {model} vs simulation {sim}");

    let m = MuntzLuiModel::new(21, 10, 210.0, 0.5, 46.0, s.units_per_disk());
    let uw = m.reconstruction_time(ReconAlgorithm::UserWrites).unwrap();
    let rd = m.reconstruction_time(ReconAlgorithm::Redirect).unwrap();
    assert!(rd <= uw, "model should favour redirect: {rd} vs {uw}");
}

#[test]
fn piggyback_changes_little_over_redirect() {
    // Section 8.2: "piggybacking of writes yields very little improvement
    // or penalty over redirection of reads alone."
    let s = scale();
    let rd = fig8::run_point(&s, 10, 105.0, ReconAlgorithm::Redirect, 1).unwrap();
    let pb = fig8::run_point(&s, 10, 105.0, ReconAlgorithm::RedirectPiggyback, 1).unwrap();
    let t_ratio = pb.recon_secs.unwrap() / rd.recon_secs.unwrap();
    let r_ratio = pb.user_ms / rd.user_ms;
    assert!((0.7..1.3).contains(&t_ratio), "recon ratio {t_ratio}");
    assert!((0.8..1.25).contains(&r_ratio), "response ratio {r_ratio}");
}

#[test]
fn parsed_layout_table_drives_the_simulator() {
    // Export the paper's G=4 layout to the portable text format, parse it
    // back, and run a reconstruction on the parsed table: identical
    // behaviour to the native layout, seed for seed.
    let native = paper_layout(4).unwrap();
    let parsed: TabularLayout = tabular::export(native.as_ref()).parse().unwrap();
    let run = |layout: Arc<dyn decluster::core::layout::ParityLayout>| {
        let mut s = ArraySim::new(
            layout,
            ArrayConfig::scaled(30),
            WorkloadSpec::half_and_half(40.0),
            1,
        )
        .unwrap();
        s.fail_disk(0).expect("disk is healthy and in range");
        s.start_reconstruction(ReconOptions::new(ReconAlgorithm::Redirect).processes(4))
            .expect("a disk failed and processes > 0");
        s.run_until_reconstructed(SimTime::from_secs(100_000))
    };
    let a = run(native);
    let b = run(Arc::new(parsed));
    assert_eq!(a.reconstruction_time, b.reconstruction_time);
    assert_eq!(a.ops, b.ops);
}
