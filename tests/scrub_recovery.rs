//! Integration and property tests for the robustness subsystem: patrol-
//! read scrubbing and crash/write-hole recovery, driven through the full
//! stack — the disk fault model, the array simulator, the recovery
//! scanner, the byte-accurate data plane, and the campaign harness.

use decluster::array::data::DataArray;
use decluster::array::{
    recover, ArrayConfig, ArraySim, CrashPlan, ReconAlgorithm, ReconOptions, RecoveryPolicy,
    ScrubConfig,
};
use decluster::disk::{MediaFaultConfig, MediaFaultModel};
use decluster::experiments::campaign::{self, CampaignLayout, CampaignSpec};
use decluster::experiments::{paper_layout, Runner};
use decluster::sim::{SimRng, SimTime};
use decluster::workload::WorkloadSpec;

/// Media retries back off exponentially: retry `k` waits
/// `backoff_us << (k-1)`, so the total paid for `r` retries telescopes to
/// the closed form `backoff_us * (2^r - 1)` the disk model reports.
#[test]
fn retry_backoff_total_matches_the_closed_form() {
    for base in [1u64, 250, 1_000, 4_096] {
        let mut cfg = MediaFaultConfig::none().with_transient_rate(0.1);
        cfg.backoff_us = base;
        let model = MediaFaultModel::new(cfg, 0);
        let mut total = 0u64;
        for retries in 0..=8u8 {
            let closed_form = base as f64 * ((1u64 << retries) - 1) as f64;
            assert_eq!(
                model.backoff_us(retries),
                closed_form,
                "base {base}, {retries} retries"
            );
            // The closed form really is the telescoped sum of the
            // per-retry waits.
            if retries > 0 {
                total += base << (retries - 1);
            }
            assert_eq!(total as f64, closed_form);
        }
    }
}

fn latent_cfg(scrub: ScrubConfig, latent_rate: f64) -> ArrayConfig {
    ArrayConfig::builder()
        .cylinders(30)
        .media_faults(MediaFaultConfig::none().with_latent_rate(latent_rate))
        .scrub(scrub)
        .build()
}

/// Every stripe unit of the failed disk is accounted for exactly once,
/// whatever the scrubber, the workload, or the defect density does to the
/// rebuild: swept by a reconstruction process, rebuilt via user-write
/// piggybacking, or lost to a latent error meeting the failed disk.
#[test]
fn scrub_sweep_accounting_identity_holds_across_seeds_and_rates() {
    for seed_stream in [1u64, 9, 42] {
        for latent_rate in [0.0, 2e-4, 2e-3] {
            let cfg = latent_cfg(ScrubConfig::on().with_interval_us(500), latent_rate);
            let mut sim = ArraySim::new(
                paper_layout(4).unwrap(),
                cfg,
                WorkloadSpec::half_and_half(30.0),
                seed_stream,
            )
            .unwrap();
            sim.fail_disk(0).unwrap();
            sim.start_reconstruction(ReconOptions::new(ReconAlgorithm::Baseline).processes(4))
                .unwrap();
            let report = sim.run_until_reconstructed(SimTime::from_secs(100_000));
            assert!(report.reconstruction_time.is_some(), "sweep must finish");
            assert_eq!(
                report.units_swept + report.units_by_users + report.units_lost,
                report.units_total,
                "stream {seed_stream}, rate {latent_rate}: sweep accounting leaked"
            );
        }
    }
}

/// The scrubber's two throttles (in-flight cap + busy backoff) bound how
/// much patrolling costs the foreground: mean user response time with the
/// patrol running stays within 25% of the scrub-off baseline, while the
/// patrol still makes real progress.
#[test]
fn scrub_throttle_bounds_user_response_time_degradation() {
    let run = |scrub: ScrubConfig| {
        let sim = ArraySim::new(
            paper_layout(4).unwrap(),
            latent_cfg(scrub, 2e-4),
            WorkloadSpec::half_and_half(60.0),
            11,
        )
        .unwrap();
        sim.run_for(SimTime::from_secs(40), SimTime::from_secs(4))
    };
    let off = run(ScrubConfig::off());
    let on = run(ScrubConfig::on().with_interval_us(500));
    assert!(off.scrub.is_none());
    let scrub = on.scrub.expect("patrol enabled");
    assert!(scrub.stripes_scanned > 0, "the patrol must make progress");
    assert!(scrub.backoffs > 0, "the throttle must actually engage");
    let (base, patrolled) = (off.ops.all.mean_ms(), on.ops.all.mean_ms());
    assert!(
        patrolled <= base * 1.25,
        "patrol slowed user traffic past the bound: {patrolled:.2} ms vs {base:.2} ms"
    );
}

/// A power cut under a saturating write load tears parity updates; both
/// restart policies must find and repair every torn stripe, the
/// dirty-region log must read strictly less than the full resync, and a
/// byte-level replay of the repairs must leave zero inconsistent stripes
/// under an exhaustive parity check.
#[test]
fn crash_recovery_closes_the_write_hole_under_both_policies() {
    let cfg = ArrayConfig::scaled(30);
    let layout = paper_layout(4).unwrap();
    // 400 writes/s saturates the 21-disk array, so the cut is guaranteed
    // to land amid half-applied parity updates.
    let mut sim = ArraySim::new(layout.clone(), cfg, WorkloadSpec::all_writes(400.0), 3).unwrap();
    sim.inject_crash(&CrashPlan::at(SimTime::from_secs(5)))
        .unwrap();
    let report = sim.run_for(SimTime::from_secs(60), SimTime::ZERO);
    let crash = report.crash.expect("the planned cut must fire");
    assert!(
        !crash.torn_stripes.is_empty(),
        "a saturating write load always has half-applied parity updates"
    );

    let full = recover(layout.clone(), &cfg, &crash, RecoveryPolicy::FullResync).unwrap();
    let drl = recover(layout.clone(), &cfg, &crash, RecoveryPolicy::DirtyRegionLog).unwrap();
    for pass in [&full, &drl] {
        assert_eq!(pass.torn_found, crash.torn_stripes.len() as u64);
        assert_eq!(
            pass.torn_repaired, pass.torn_found,
            "every torn stripe repaired"
        );
    }
    assert_eq!(drl.stripes_checked, crash.dirty_stripes.len() as u64);
    assert!(
        drl.resync_units_read < full.resync_units_read,
        "the dirty-region log must bound the resync read set: {} vs {}",
        drl.resync_units_read,
        full.resync_units_read
    );
    assert!(drl.recovery_secs <= full.recovery_secs);

    // Byte-level replay on the data plane: tear exactly the stripes the
    // crash recorded, repair exactly the set the DRL pass verified (its
    // log), and demand a clean exhaustive parity check — if the log
    // missed a torn stripe, this fails.
    let mut array = DataArray::new(layout, cfg.data_units_per_disk(), 8).unwrap();
    let mut rng = SimRng::new(17);
    for _ in 0..512 {
        let logical = rng.below(array.data_units());
        let unit: Vec<u8> = (0..8).map(|_| rng.next_u64() as u8).collect();
        array.write(logical, &unit);
    }
    for &stripe in &crash.torn_stripes {
        array.scramble_parity(stripe).unwrap();
    }
    assert!(array.verify_parity().is_err(), "the tear must be visible");
    for &stripe in &crash.dirty_stripes {
        array.recompute_parity(stripe).unwrap();
    }
    array
        .verify_parity()
        .expect("zero inconsistent stripes after dirty-region recovery");
}

/// The campaign's smoke-scale scrub arm: with latent defects seeded at
/// the spec's rate, patrolling strictly lowers the mean defect count
/// exposed at second-fault time, and the crash arm's dirty-region log
/// recovers with strictly fewer reads than the full resync.
#[test]
fn smoke_scale_campaign_arms_show_the_headline_effects() {
    let mut spec = CampaignSpec::smoke();
    spec.layouts = vec![CampaignLayout::Declustered { g: 4 }];
    spec.trials = 1; // the whole-disk arm is covered by its own tests
    spec.scrub_trials = 2;
    spec.crash_trials = 1;
    let report = campaign::run_campaign(&spec, &Runner::new(0)).unwrap();
    let layout = &report.layouts[0];

    let [off, on] = layout.scrub_arms.as_slice() else {
        panic!("expected an off arm and an on arm");
    };
    assert!(
        on.errors_repaired > 0,
        "the patrol must repair latent errors"
    );
    assert!(
        on.mean_exposed_defects < off.mean_exposed_defects,
        "scrub-on must strictly lower exposure at second-fault time: {} vs {}",
        on.mean_exposed_defects,
        off.mean_exposed_defects
    );

    let crash = &layout.crash_trials[0];
    assert_eq!(crash.full.torn_repaired, crash.full.torn_found);
    assert_eq!(crash.drl.torn_repaired, crash.drl.torn_found);
    assert_eq!(crash.drl.torn_found, crash.torn_stripes);
    assert!(crash.drl.units_read < crash.full.units_read);
}
