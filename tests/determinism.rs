//! Reproducibility: a simulation is a pure function of configuration and
//! seed, and seeds actually matter.

use decluster::array::{ArrayConfig, ArraySim, ReconAlgorithm, ReconOptions};
use decluster::experiments::paper_layout;
use decluster::sim::SimTime;
use decluster::workload::WorkloadSpec;

fn cfg() -> ArrayConfig {
    ArrayConfig::scaled(30)
}

#[test]
fn steady_state_runs_are_bit_identical() {
    let run = || {
        ArraySim::new(
            paper_layout(4).unwrap(),
            cfg(),
            WorkloadSpec::half_and_half(60.0),
            7,
        )
        .unwrap()
        .run_for(SimTime::from_secs(20), SimTime::from_secs(2))
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn reconstruction_runs_are_bit_identical() {
    let run = || {
        let mut s = ArraySim::new(
            paper_layout(4).unwrap(),
            cfg(),
            WorkloadSpec::half_and_half(60.0),
            7,
        )
        .unwrap();
        s.fail_disk(5).expect("disk is healthy and in range");
        s.start_reconstruction(ReconOptions::new(ReconAlgorithm::RedirectPiggyback).processes(4))
            .expect("a disk failed and processes > 0");
        s.run_until_reconstructed(SimTime::from_secs(50_000))
    };
    let a = run();
    let b = run();
    assert_eq!(a.reconstruction_time, b.reconstruction_time);
    assert_eq!(a.ops, b.ops);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.units_swept, b.units_swept);
    assert_eq!(a.units_by_users, b.units_by_users);
}

#[test]
fn different_seed_streams_differ() {
    let run = |stream| {
        ArraySim::new(
            paper_layout(4).unwrap(),
            cfg(),
            WorkloadSpec::half_and_half(60.0),
            stream,
        )
        .unwrap()
        .run_for(SimTime::from_secs(20), SimTime::from_secs(2))
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(
        a.ops.all, b.ops.all,
        "different seed streams produced identical response distributions"
    );
}

#[test]
fn results_are_stable_across_seeds_in_aggregate() {
    // Different seeds change individual samples but the mean response time
    // of a long-enough run stays in a narrow band — the statistic the
    // figures report is robust.
    let mean = |stream| {
        ArraySim::new(
            paper_layout(4).unwrap(),
            cfg(),
            WorkloadSpec::all_reads(60.0),
            stream,
        )
        .unwrap()
        .run_for(SimTime::from_secs(30), SimTime::from_secs(3))
        .ops
        .all
        .mean_ms()
    };
    let samples: Vec<f64> = (1..=4).map(mean).collect();
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(0.0, f64::max);
    assert!(
        max / min < 1.25,
        "seed-to-seed spread too wide: {samples:?}"
    );
}
