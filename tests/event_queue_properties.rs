//! Property-style tests of the event queue against a reference model: a
//! sorted list with stable insertion order. The whole simulator's
//! causality rests on this ordering.
//!
//! Randomized cases are driven by the workspace's own deterministic
//! [`SimRng`] (the build environment has no crates.io access, so proptest
//! is unavailable); every case is reproducible from its printed case id.

use decluster::sim::{EventQueue, SimRng, SimTime};

/// A scripted action against both implementations.
#[derive(Debug, Clone)]
enum Action {
    /// Schedule an event this many µs after the current clock.
    Schedule(u64),
    /// Pop the next event.
    Pop,
}

fn random_script(rng: &mut SimRng) -> Vec<Action> {
    let len = 1 + rng.below(200) as usize;
    (0..len)
        .map(|_| {
            if rng.chance(0.5) {
                Action::Schedule(rng.below(10_000))
            } else {
                Action::Pop
            }
        })
        .collect()
}

/// The queue agrees with a stable-sorted reference under arbitrary
/// interleavings of schedules and pops.
#[test]
fn matches_reference_model() {
    for case in 0..256u64 {
        let mut rng = SimRng::new(0x5EED_0001 ^ case);
        let script = random_script(&mut rng);
        let mut queue: EventQueue<u32> = EventQueue::new();
        // Reference: (time, insertion sequence, payload), popped by minimum
        // (time, seq).
        let mut reference: Vec<(SimTime, u64, u32)> = Vec::new();
        let mut now = SimTime::ZERO;
        let mut seq = 0u64;
        let mut payload = 0u32;

        for action in script {
            match action {
                Action::Schedule(delay) => {
                    let at = now + SimTime::from_us(delay);
                    queue.schedule(at, payload);
                    reference.push((at, seq, payload));
                    seq += 1;
                    payload += 1;
                }
                Action::Pop => {
                    // Reference pop: earliest time, then earliest insertion.
                    let expected = reference
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(at, s, _))| (at, s))
                        .map(|(i, _)| i);
                    match (queue.pop(), expected) {
                        (None, None) => {}
                        (Some((at, got)), Some(i)) => {
                            let (eat, _, want) = reference.remove(i);
                            assert_eq!(at, eat, "case {case}: pop time mismatch");
                            assert_eq!(got, want, "case {case}: pop payload mismatch");
                            assert!(at >= now, "case {case}: time went backwards");
                            now = at;
                            assert_eq!(queue.now(), now);
                        }
                        (got, want) => {
                            panic!("case {case}: emptiness mismatch: {got:?} vs {want:?}");
                        }
                    }
                }
            }
        }
        assert_eq!(queue.len(), reference.len(), "case {case}");
    }
}

/// Draining the queue yields exactly the schedule sorted by (time, seq):
/// the tie-break documented on `Scheduled::cmp` holds for arbitrary
/// schedules, including heavy same-instant collisions.
#[test]
fn pop_order_equals_sorted_time_seq_order() {
    for case in 0..128u64 {
        let mut rng = SimRng::new(0x5EED_0002 ^ case);
        let n = 1 + rng.below(300) as usize;
        let mut queue: EventQueue<usize> = EventQueue::new();
        let mut scheduled: Vec<(SimTime, u64, usize)> = Vec::new();
        for i in 0..n {
            // Coarse timestamps force plenty of exact ties.
            let at = SimTime::from_us(rng.below(40) * 100);
            queue.schedule(at, i);
            scheduled.push((at, i as u64, i));
        }
        scheduled.sort_by_key(|&(at, seq, _)| (at, seq));
        let drained: Vec<(SimTime, usize)> = std::iter::from_fn(|| queue.pop()).collect();
        let expected: Vec<(SimTime, usize)> =
            scheduled.into_iter().map(|(at, _, e)| (at, e)).collect();
        assert_eq!(drained, expected, "case {case}");
    }
}
