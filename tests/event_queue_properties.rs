//! Property-based test of the event queue against a reference model: a
//! sorted list with stable insertion order. The whole simulator's
//! causality rests on this ordering.

use decluster::sim::{EventQueue, SimTime};
use proptest::prelude::*;

/// A scripted action against both implementations.
#[derive(Debug, Clone)]
enum Action {
    /// Schedule an event this many µs after the current clock.
    Schedule(u64),
    /// Pop the next event.
    Pop,
}

fn actions() -> impl Strategy<Value = Vec<Action>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..10_000).prop_map(Action::Schedule),
            Just(Action::Pop),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The queue agrees with a stable-sorted reference under arbitrary
    /// interleavings of schedules and pops.
    #[test]
    fn matches_reference_model(script in actions()) {
        let mut queue: EventQueue<u32> = EventQueue::new();
        // Reference: (time, insertion sequence, payload), kept sorted.
        let mut reference: Vec<(SimTime, u64, u32)> = Vec::new();
        let mut now = SimTime::ZERO;
        let mut seq = 0u64;
        let mut payload = 0u32;

        for action in script {
            match action {
                Action::Schedule(delay) => {
                    let at = now + SimTime::from_us(delay);
                    queue.schedule(at, payload);
                    reference.push((at, seq, payload));
                    seq += 1;
                    payload += 1;
                }
                Action::Pop => {
                    // Reference pop: earliest time, then earliest insertion.
                    let expected = reference
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(at, s, _))| (at, s))
                        .map(|(i, _)| i);
                    match (queue.pop(), expected) {
                        (None, None) => {}
                        (Some((at, got)), Some(i)) => {
                            let (eat, _, want) = reference.remove(i);
                            prop_assert_eq!(at, eat, "pop time mismatch");
                            prop_assert_eq!(got, want, "pop payload mismatch");
                            prop_assert!(at >= now, "time went backwards");
                            now = at;
                            prop_assert_eq!(queue.now(), now);
                        }
                        (got, want) => {
                            prop_assert!(false, "emptiness mismatch: {got:?} vs {want:?}");
                        }
                    }
                }
            }
        }
        prop_assert_eq!(queue.len(), reference.len());
    }
}
