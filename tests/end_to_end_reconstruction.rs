//! End-to-end correctness: the data plane survives arbitrary fail /
//! degrade / rebuild histories without losing a byte, across layout
//! families.

use decluster::array::data::DataArray;
use decluster::core::design::appendix;
use decluster::core::layout::{LayoutSpec, ParityLayout};
use decluster::sim::SimRng;
use std::collections::HashMap;
use std::sync::Arc;

const UNIT: usize = 8;

fn random_unit(rng: &mut SimRng) -> Vec<u8> {
    (0..UNIT).map(|_| rng.next_u64() as u8).collect()
}

/// Applies a scripted history: pre-fill, fail, degraded churn, replace,
/// interleaved rebuild + churn, then verify every logical unit and the
/// parity invariant.
fn exercise(layout: Arc<dyn ParityLayout>, units_per_disk: u64, seed: u64, failed: u16) {
    let mut array = DataArray::new(layout, units_per_disk, UNIT).expect("layout fits");
    let mut rng = SimRng::new(seed);
    let mut shadow: HashMap<u64, Vec<u8>> = HashMap::new();

    for logical in 0..array.data_units() {
        let v = random_unit(&mut rng);
        array.write(logical, &v);
        shadow.insert(logical, v);
    }
    array.fail_disk(failed).expect("first failure is legal");
    for _ in 0..200 {
        let logical = rng.below(array.data_units());
        if rng.chance(0.5) {
            assert_eq!(array.read(logical), shadow[&logical], "degraded read");
        } else {
            let v = random_unit(&mut rng);
            array.write(logical, &v);
            shadow.insert(logical, v);
        }
    }
    array
        .replace_disk()
        .expect("a failed disk awaits replacement");
    for offset in 0..units_per_disk {
        array
            .reconstruct_unit(offset)
            .expect("replacement installed");
        if offset % 5 == 0 {
            let logical = rng.below(array.data_units());
            let v = random_unit(&mut rng);
            array.write(logical, &v);
            shadow.insert(logical, v);
        }
    }
    array.reconstruct_all().expect("replacement installed");

    for (logical, v) in &shadow {
        assert_eq!(&array.read(*logical), v, "logical {logical} after rebuild");
    }
    array
        .verify_parity()
        .expect("parity consistent after rebuild");
}

#[test]
fn every_appendix_layout_survives_failure_and_rebuild() {
    for g in appendix::PAPER_GROUP_SIZES {
        let spec = if g == 21 {
            "raid5:c21".to_string()
        } else {
            format!("bibd:c21g{g}")
        };
        let layout = spec.parse::<LayoutSpec>().unwrap().build().unwrap();
        // One full table plus change, to exercise truncation.
        let units = layout.table_height() + layout.table_height() / 3;
        exercise(layout, units, 0xAB + g as u64, g % 21);
    }
}

#[test]
fn reddy_layout_survives_failure_and_rebuild() {
    let layout = "reddy:c8".parse::<LayoutSpec>().unwrap().build().unwrap();
    exercise(layout, 300, 0xCD, 3);
}

#[test]
fn mirrored_layouts_survive_failure_and_rebuild() {
    // Mirrored pairs are G = 2 parity stripes, so the same XOR algebra
    // (copy) and the same reconstruction machinery apply.
    let interleaved = "mirror:c7".parse::<LayoutSpec>().unwrap().build().unwrap();
    exercise(interleaved, 100, 0xEF, 4);
    let chained = "chained:c7".parse::<LayoutSpec>().unwrap().build().unwrap();
    exercise(chained, 100, 0xF0, 2);
}

#[test]
fn pq_layouts_survive_failure_and_rebuild() {
    // The same single-failure cycle every other family runs, plus the
    // GF(256) Q unit in play: data must come back byte-identical and
    // both parities must verify after the rebuild.
    for spec in ["pq:c5g4", "pq:c8g5", "pq:c12g6"] {
        let layout = spec.parse::<LayoutSpec>().unwrap().build().unwrap();
        let units = layout.table_height() + layout.table_height() / 3;
        exercise(layout, units, 0x9C, 2);
    }
}

/// Random small layouts, random failed disk, random seeds: data always
/// survives a full failure/rebuild cycle. Cases are drawn with the
/// workspace's deterministic [`SimRng`] (proptest is unavailable offline).
#[test]
fn random_history_never_loses_data() {
    for case in 0..24u64 {
        let mut rng = SimRng::new(0x5EED_3001 ^ case);
        let g = 2 + rng.below(4) as u16; // 2..=5
        let c = 5 + rng.below(4) as u16; // 5..=8 (always >= g)
        let failed = rng.below(5) as u16;
        let seed = rng.below(1_000);
        let layout: Arc<dyn ParityLayout> = format!("complete:c{c}g{g}")
            .parse::<LayoutSpec>()
            .unwrap()
            .build()
            .unwrap();
        let units = layout.table_height() * 2 + 3;
        exercise(layout, units, seed, failed % c);
    }
}
