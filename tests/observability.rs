//! Integration tests for the observability layer, driven through the
//! public facade: histogram merge algebra, parallel-sweep report
//! determinism, and the probe's observe-without-perturbing guarantee.

use decluster::array::{ArrayConfig, ArraySim};
use decluster::experiments::{csv, fig6, ExperimentScale, Runner};
use decluster::sim::{LatencyHistogram, Recorder, SimTime};
use decluster::workload::WorkloadSpec;

/// A deterministic latency stream for histogram tests.
fn lcg_samples(seed: u64, n: usize, modulus: u64) -> Vec<u64> {
    let mut x = seed;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            x % modulus
        })
        .collect()
}

fn hist_of(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &us in samples {
        h.record_us(us);
    }
    h
}

/// Sharding a latency stream and merging the shard histograms — in any
/// grouping and any order — must reproduce the single-histogram result
/// byte for byte. This is the algebraic fact the parallel sweep runner
/// leans on.
#[test]
fn sharded_merges_reproduce_the_sequential_histogram_exactly() {
    let samples = lcg_samples(97, 900, 5_000_000);
    let whole = hist_of(&samples);

    let shards: Vec<LatencyHistogram> = samples.chunks(250).map(hist_of).collect();

    // Left fold, right fold, and a reversed-order fold.
    let mut left = LatencyHistogram::new();
    for s in &shards {
        left.merge(s);
    }
    let mut right = LatencyHistogram::new();
    for s in shards.iter().rev() {
        right.merge(s);
    }
    let mut paired = {
        let mut a = shards[0].clone();
        a.merge(&shards[1]);
        let mut b = shards[2].clone();
        b.merge(&shards[3]);
        a.merge(&b);
        a
    };
    paired.merge(&LatencyHistogram::new()); // the empty histogram is the identity

    for merged in [&left, &right, &paired] {
        assert_eq!(merged, &whole);
        assert_eq!(merged.to_json(), whole.to_json());
    }
}

/// Histogram quantiles are nearest-rank reads off log-scaled buckets:
/// within one bucket width of the exact value, monotone in `q`, and
/// bounded by the exact maximum.
#[test]
fn quantiles_are_bucket_accurate_monotone_and_bounded() {
    let mut samples = lcg_samples(3, 1_200, 2_000_000);
    let h = hist_of(&samples);
    samples.sort_unstable();

    let mut prev = 0;
    for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let truth = samples[rank - 1];
        let (lower, upper) = LatencyHistogram::bucket_span_us(truth);
        let got = h.quantile_us(q);
        assert!(
            got.abs_diff(truth) <= upper - lower,
            "q={q}: read {got}, exact {truth}, bucket [{lower},{upper})"
        );
        assert!(got >= prev, "quantiles must be monotone in q");
        assert!(got <= h.max_us() + (upper - lower));
        prev = got;
    }

    let empty = LatencyHistogram::new();
    assert_eq!(empty.quantile_us(0.99), 0);
    assert_eq!(empty.max_us(), 0);
    assert_eq!(empty.mean_ms(), 0.0);
}

/// The same sweep dispatched on one worker and on four must render the
/// same CSV byte for byte: job results come back in submission order and
/// every statistic is integral underneath.
#[test]
fn fig6_sweep_csv_is_byte_identical_across_thread_counts() {
    let scale = ExperimentScale::tiny();
    let rates = [40.0];
    let run = |runner: &Runner| {
        let points = fig6::figure_6_1_on(runner, &scale, &rates)
            .transpose()
            .expect("tiny sweep points all simulate")
            .into_values();
        csv::fig6_csv(&points)
    };
    let sequential = run(&Runner::sequential());
    let parallel = run(&Runner::new(4));
    assert_eq!(sequential, parallel);
}

/// Attaching a recorder must observe the run without perturbing it: the
/// probed report matches the unprobed one in every shared field, and the
/// observations it adds are internally consistent (ordered quantiles,
/// utilizations in [0, 1], a timeline per disk).
#[test]
fn recorder_observes_without_perturbing_the_simulation() {
    let layout = decluster::experiments::paper_layout(4).unwrap();
    let cfg = ArrayConfig::scaled(30);
    let spec = WorkloadSpec::half_and_half(60.0);
    let (duration, warmup) = (SimTime::from_secs(20), SimTime::from_secs(2));

    let plain = ArraySim::new(layout.clone(), cfg, spec, 5)
        .unwrap()
        .run_for(duration, warmup);
    let probed = ArraySim::new_probed(layout, cfg, spec, 5, Recorder::new())
        .unwrap()
        .run_for(duration, warmup);

    assert_eq!(plain.ops, probed.ops);
    assert_eq!(plain.requests_measured, probed.requests_measured);
    assert_eq!(plain.events_processed, probed.events_processed);
    assert!(plain.observations.is_none());

    let obs = probed.observations.expect("recorder yields observations");
    assert_eq!(obs.timelines.len(), 21, "one timeline per disk");
    for timeline in &obs.timelines {
        assert!(!timeline.samples.is_empty());
        for s in &timeline.samples {
            assert!((0.0..=1.0).contains(&s.utilization));
        }
    }

    let p50 = probed.ops.p50_ms();
    let p95 = probed.ops.p95_ms();
    let p99 = probed.ops.p99_ms();
    assert!(p50 > 0.0 && p50 <= p95 && p95 <= p99);
    assert!(p99 <= probed.ops.all_hist.max_ms());
}
