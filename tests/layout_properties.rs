//! Property-style tests on the layout machinery: every constructible
//! design must yield a layout meeting the paper's criteria, and array
//! mappings must round-trip addresses for arbitrary disk sizes.
//!
//! Cases are enumerated/randomized with the workspace's deterministic
//! [`SimRng`] (no crates.io access in the build environment, so proptest
//! is unavailable); each case is identified in assertion messages.

use decluster::core::design::{catalog, BlockDesign};
use decluster::core::layout::{
    criteria, spec, tabular, ArrayMapping, DeclusteredLayout, LayoutSpec, ParityLayout,
    Raid5Layout, TabularLayout, UnitRole,
};
use decluster::sim::SimRng;
use std::sync::Arc;

/// Every (v, k) pair with `k <= v` the catalog can satisfy with a small
/// table — the strategy space the proptest version sampled from.
fn small_catalog_pairs() -> Vec<(u16, u16)> {
    let mut pairs = Vec::new();
    for v in 3u16..=13 {
        for k in 2u16..=v {
            if catalog::find_with_limit(v, k, 2_000).is_ok() {
                pairs.push((v, k));
            }
        }
    }
    assert!(!pairs.is_empty(), "catalog satisfies no small designs");
    pairs
}

fn build_layout(v: u16, k: u16) -> Option<DeclusteredLayout> {
    let design = catalog::find_with_limit(v, k, 2_000).unwrap();
    if design.params().k < 2 {
        return None;
    }
    Some(DeclusteredLayout::new(design).unwrap())
}

/// Criteria 1–3 hold for every layout the catalog can build.
#[test]
fn catalog_layouts_meet_criteria() {
    for (v, k) in small_catalog_pairs() {
        let Some(layout) = build_layout(v, k) else {
            continue;
        };
        let report = criteria::check(&layout);
        assert!(report.all_hold(), "v={v} k={k}: {report:?}");
    }
}

/// role_at and the stripe-location functions are mutually inverse over
/// arbitrary global offsets.
#[test]
fn role_location_inverse() {
    let mut rng = SimRng::new(0x5EED_1001);
    for (v, k) in small_catalog_pairs() {
        let Some(layout) = build_layout(v, k) else {
            continue;
        };
        for _ in 0..24 {
            let offset = rng.below(5_000);
            let disk = (rng.below(100) % layout.disks() as u64) as u16;
            match layout.role_at(disk, offset) {
                UnitRole::Data { stripe, index } => {
                    let addr = layout.data_location(stripe, index);
                    assert_eq!(
                        (addr.disk, addr.offset),
                        (disk, offset),
                        "v={v} k={k} disk={disk} offset={offset}"
                    );
                }
                UnitRole::Parity { stripe, index } => {
                    let addr = layout.parity_location(stripe, index);
                    assert_eq!(
                        (addr.disk, addr.offset),
                        (disk, offset),
                        "v={v} k={k} disk={disk} offset={offset}"
                    );
                }
                UnitRole::Unmapped => panic!("v={v} k={k}: raw layouts have no holes"),
            }
        }
    }
}

/// Array mappings round-trip logical addresses for arbitrary disk sizes
/// (including awkward partial-table remainders).
#[test]
fn mapping_round_trips() {
    let mut rng = SimRng::new(0x5EED_1002);
    for (v, k) in small_catalog_pairs() {
        let Some(layout) = build_layout(v, k) else {
            continue;
        };
        let layout: Arc<dyn ParityLayout> = Arc::new(layout);
        for _ in 0..6 {
            let units = 1 + rng.below(3_999);
            let Ok(mapping) = ArrayMapping::new(Arc::clone(&layout), units) else {
                // Disk too small to hold a single stripe: acceptable rejection.
                continue;
            };
            // Sample the logical space rather than sweeping it.
            let step = (mapping.data_units() / 64).max(1);
            let mut logical = 0;
            while logical < mapping.data_units() {
                let (stripe, index) = mapping.logical_to_stripe(logical);
                assert_eq!(
                    mapping.stripe_to_logical(stripe, index),
                    Some(logical),
                    "v={v} k={k} units={units}"
                );
                let addr = mapping.logical_to_addr(logical);
                assert!(addr.offset < units, "v={v} k={k}: unit past disk end");
                assert_eq!(
                    mapping.role_at(addr.disk, addr.offset),
                    UnitRole::Data { stripe, index },
                    "v={v} k={k} units={units} logical={logical}"
                );
                logical += step;
            }
        }
    }
}

/// Every mapped stripe of a truncated mapping lies entirely below the
/// disk end — reconstruction never chases a missing unit.
#[test]
fn truncation_never_splits_stripes() {
    let mut rng = SimRng::new(0x5EED_1003);
    for (v, k) in small_catalog_pairs() {
        let Some(layout) = build_layout(v, k) else {
            continue;
        };
        let layout: Arc<dyn ParityLayout> = Arc::new(layout);
        for _ in 0..6 {
            let units = 1 + rng.below(3_999);
            let Ok(mapping) = ArrayMapping::new(Arc::clone(&layout), units) else {
                continue;
            };
            let step = (mapping.stripes() / 64).max(1);
            let mut seq = 0;
            while seq < mapping.stripes() {
                let stripe = mapping.stripe_by_seq(seq);
                for u in mapping.stripe_units(stripe) {
                    assert!(
                        u.offset < units,
                        "v={v} k={k} units={units}: stripe {stripe} leaks past disk end"
                    );
                }
                seq += step;
            }
        }
    }
}

/// Any catalog layout survives a text round-trip through the portable
/// table format cell-for-cell.
#[test]
fn tabular_round_trip() {
    for (v, k) in small_catalog_pairs() {
        let Some(layout) = build_layout(v, k) else {
            continue;
        };
        let parsed: TabularLayout = tabular::export(&layout).parse().unwrap();
        assert_eq!(parsed.disks(), layout.disks());
        assert_eq!(parsed.table_height(), layout.table_height());
        for disk in 0..layout.disks() {
            for offset in 0..layout.table_height() {
                assert_eq!(
                    parsed.role_in_table(disk, offset),
                    layout.role_in_table(disk, offset),
                    "v={v} k={k} disk={disk} offset={offset}"
                );
            }
        }
    }
}

/// Registry-wide sweep: every example spec of every family parses,
/// round-trips through `Display`, builds, reports the geometry the spec
/// promises, satisfies the paper's criteria (`chained` excepted — ring
/// mirroring concentrates rebuild load on neighbours by construction,
/// which is exactly the trade-off it exists to demonstrate), and maps an
/// array with a partial-table remainder whose logical addresses
/// round-trip.
#[test]
fn registry_examples_build_check_and_map() {
    let mut rng = SimRng::new(0x5EED_1004);
    let mut swept = 0usize;
    for family in spec::registry() {
        for &example in family.examples {
            let parsed: LayoutSpec = example.parse().unwrap_or_else(|e| panic!("{example}: {e}"));
            assert_eq!(parsed.to_string(), example, "Display round-trip");
            assert_eq!(parsed.family(), family.name, "{example}");
            let layout = parsed
                .build()
                .unwrap_or_else(|e| panic!("{example} failed to build: {e}"));
            assert_eq!(layout.disks(), parsed.disks(), "{example}");
            assert_eq!(layout.stripe_width(), parsed.group(), "{example}");
            assert_eq!(
                layout.parity_units_per_stripe(),
                parsed.parity_units(),
                "{example}"
            );

            let report = criteria::check(layout.as_ref());
            if family.name == "chained" {
                assert!(
                    report.distributed_reconstruction.is_err(),
                    "{example}: chained mirroring cannot balance rebuild load"
                );
            } else {
                assert!(report.all_hold(), "{example}: {report:?}");
            }

            // The mapping machinery accepts the layout with an awkward
            // partial-table tail, and logical addresses round-trip.
            let units = layout.table_height() + 1 + rng.below(layout.table_height());
            let mapping = ArrayMapping::new(layout, units)
                .unwrap_or_else(|e| panic!("{example} at {units} units: {e}"));
            let step = (mapping.data_units() / 32).max(1);
            let mut logical = 0;
            while logical < mapping.data_units() {
                let (stripe, index) = mapping.logical_to_stripe(logical);
                assert_eq!(
                    mapping.stripe_to_logical(stripe, index),
                    Some(logical),
                    "{example} units={units}"
                );
                let addr = mapping.logical_to_addr(logical);
                assert_eq!(
                    mapping.role_at(addr.disk, addr.offset),
                    UnitRole::Data { stripe, index },
                    "{example} units={units} logical={logical}"
                );
                logical += step;
            }
            swept += 1;
        }
    }
    // The registry must keep advertising a real spread of families.
    assert!(
        swept >= 20,
        "registry example sweep shrank to {swept} specs"
    );
}

/// RAID 5 layouts of any width satisfy the criteria (the baseline the
/// paper compares against).
#[test]
fn raid5_criteria_hold() {
    for c in 2u16..40 {
        let layout = Raid5Layout::new(c).unwrap();
        let report = criteria::check(&layout);
        assert!(report.all_hold(), "C={c}: {report:?}");
        assert_eq!(report.sequential_parallelism, c as usize);
    }
}

/// Sanity check: the complete-design layout used throughout the paper's
/// figures satisfies the invariants the paper derives.
#[test]
fn paper_figure_layout_invariants() {
    let design = BlockDesign::complete(5, 4).unwrap();
    let params = design.params();
    let layout = DeclusteredLayout::new(design).unwrap();
    // Table height G·r and stripe count G·b (Section 4.2).
    assert_eq!(layout.table_height(), 4 * params.r);
    assert_eq!(layout.stripes_per_table(), 4 * params.b);
    // Each surviving disk reads λ·G units per failed disk per full table.
    let reads = criteria::reconstruction_reads_per_disk(&layout, 0);
    for (d, &n) in reads.iter().enumerate().skip(1) {
        assert_eq!(n, params.lambda * 4, "disk {d}");
    }
}
