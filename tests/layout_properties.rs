//! Property-based tests on the layout machinery: every constructible
//! design must yield a layout meeting the paper's criteria, and array
//! mappings must round-trip addresses for arbitrary disk sizes.

use decluster::core::design::{catalog, BlockDesign};
use decluster::core::layout::{
    criteria, tabular, ArrayMapping, DeclusteredLayout, ParityLayout, Raid5Layout,
    TabularLayout, UnitRole,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy: a (v, k) pair the catalog can satisfy with a small table.
fn small_catalog_pair() -> impl Strategy<Value = (u16, u16)> {
    (3u16..=13, 2u16..=13)
        .prop_filter("k <= v", |(v, k)| k <= v)
        .prop_filter("design exists", |(v, k)| {
            catalog::find_with_limit(*v, *k, 2_000).is_ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Criteria 1–3 hold for every layout the catalog can build.
    #[test]
    fn catalog_layouts_meet_criteria((v, k) in small_catalog_pair()) {
        let design = catalog::find_with_limit(v, k, 2_000).unwrap();
        if design.params().k < 2 {
            return Ok(());
        }
        let layout = DeclusteredLayout::new(design).unwrap();
        let report = criteria::check(&layout);
        prop_assert!(report.all_hold(), "v={v} k={k}: {report:?}");
    }

    /// role_at and the stripe-location functions are mutually inverse over
    /// arbitrary global offsets.
    #[test]
    fn role_location_inverse(
        (v, k) in small_catalog_pair(),
        offset in 0u64..5_000,
        disk_sel in 0u16..100,
    ) {
        let design = catalog::find_with_limit(v, k, 2_000).unwrap();
        if design.params().k < 2 {
            return Ok(());
        }
        let layout = DeclusteredLayout::new(design).unwrap();
        let disk = disk_sel % layout.disks();
        match layout.role_at(disk, offset) {
            UnitRole::Data { stripe, index } => {
                let addr = layout.data_location(stripe, index);
                prop_assert_eq!((addr.disk, addr.offset), (disk, offset));
            }
            UnitRole::Parity { stripe } => {
                let addr = layout.parity_location(stripe);
                prop_assert_eq!((addr.disk, addr.offset), (disk, offset));
            }
            UnitRole::Unmapped => prop_assert!(false, "raw layouts have no holes"),
        }
    }

    /// Array mappings round-trip logical addresses for arbitrary disk
    /// sizes (including awkward partial-table remainders).
    #[test]
    fn mapping_round_trips(
        (v, k) in small_catalog_pair(),
        units in 1u64..4_000,
    ) {
        let design = catalog::find_with_limit(v, k, 2_000).unwrap();
        if design.params().k < 2 {
            return Ok(());
        }
        let layout: Arc<dyn ParityLayout> =
            Arc::new(DeclusteredLayout::new(design).unwrap());
        let Ok(mapping) = ArrayMapping::new(layout, units) else {
            // Disk too small to hold a single stripe: acceptable rejection.
            return Ok(());
        };
        // Sample the logical space rather than sweeping it.
        let step = (mapping.data_units() / 64).max(1);
        let mut logical = 0;
        while logical < mapping.data_units() {
            let (stripe, index) = mapping.logical_to_stripe(logical);
            prop_assert_eq!(mapping.stripe_to_logical(stripe, index), Some(logical));
            let addr = mapping.logical_to_addr(logical);
            prop_assert!(addr.offset < units, "unit past disk end");
            prop_assert_eq!(
                mapping.role_at(addr.disk, addr.offset),
                UnitRole::Data { stripe, index }
            );
            logical += step;
        }
    }

    /// Every mapped stripe of a truncated mapping lies entirely below the
    /// disk end — reconstruction never chases a missing unit.
    #[test]
    fn truncation_never_splits_stripes(
        (v, k) in small_catalog_pair(),
        units in 1u64..4_000,
    ) {
        let design = catalog::find_with_limit(v, k, 2_000).unwrap();
        if design.params().k < 2 {
            return Ok(());
        }
        let layout: Arc<dyn ParityLayout> =
            Arc::new(DeclusteredLayout::new(design).unwrap());
        let Ok(mapping) = ArrayMapping::new(layout, units) else {
            return Ok(());
        };
        let step = (mapping.stripes() / 64).max(1);
        let mut seq = 0;
        while seq < mapping.stripes() {
            let stripe = mapping.stripe_by_seq(seq);
            for u in mapping.stripe_units(stripe) {
                prop_assert!(u.offset < units, "stripe {stripe} leaks past disk end");
            }
            seq += step;
        }
    }

    /// Any catalog layout survives a text round-trip through the portable
    /// table format cell-for-cell.
    #[test]
    fn tabular_round_trip((v, k) in small_catalog_pair()) {
        let design = catalog::find_with_limit(v, k, 2_000).unwrap();
        if design.params().k < 2 {
            return Ok(());
        }
        let layout = DeclusteredLayout::new(design).unwrap();
        let parsed: TabularLayout = tabular::export(&layout).parse().unwrap();
        prop_assert_eq!(parsed.disks(), layout.disks());
        prop_assert_eq!(parsed.table_height(), layout.table_height());
        for disk in 0..layout.disks() {
            for offset in 0..layout.table_height() {
                prop_assert_eq!(
                    parsed.role_in_table(disk, offset),
                    layout.role_in_table(disk, offset)
                );
            }
        }
    }

    /// RAID 5 layouts of any width satisfy the criteria (the baseline the
    /// paper compares against).
    #[test]
    fn raid5_criteria_hold(c in 2u16..40) {
        let layout = Raid5Layout::new(c).unwrap();
        let report = criteria::check(&layout);
        prop_assert!(report.all_hold(), "C={c}: {report:?}");
        prop_assert_eq!(report.sequential_parallelism, c as usize);
    }
}

/// Non-proptest sanity check: the complete-design layout used throughout
/// the paper's figures satisfies the invariants the paper derives.
#[test]
fn paper_figure_layout_invariants() {
    let design = BlockDesign::complete(5, 4).unwrap();
    let params = design.params();
    let layout = DeclusteredLayout::new(design).unwrap();
    // Table height G·r and stripe count G·b (Section 4.2).
    assert_eq!(layout.table_height(), 4 * params.r);
    assert_eq!(layout.stripes_per_table(), 4 * params.b);
    // Each surviving disk reads λ·G units per failed disk per full table.
    let reads = criteria::reconstruction_reads_per_disk(&layout, 0);
    for (d, &n) in reads.iter().enumerate().skip(1) {
        assert_eq!(n, params.lambda * 4, "disk {d}");
    }
}
