//! Property-style tests on the disk model: physical plausibility bounds
//! that must hold for every request the simulator can generate.
//!
//! Randomized cases are driven by the workspace's deterministic
//! [`SimRng`] (the build environment has no crates.io access, so proptest
//! is unavailable); every case is reproducible from its printed case id.

use decluster::disk::{Disk, DiskRequest, Geometry, IoKind, SchedPolicy, SeekModel};
use decluster::sim::{SimRng, SimTime};

fn geometry() -> Geometry {
    Geometry::ibm0661()
}

/// A valid 4 KB-style request (1..=64 sectors) anywhere on disk.
fn request(rng: &mut SimRng) -> (u64, u32) {
    let total = geometry().total_sectors();
    loop {
        let start = rng.below(total);
        let sectors = 1 + rng.below(64) as u32;
        if start + sectors as u64 <= total {
            return (start, sectors);
        }
    }
}

/// Service time is bounded below by the pure transfer time and above by
/// max seek + full rotation + transfer with every skew penalty.
#[test]
fn service_time_is_physically_bounded() {
    for case in 0..128u64 {
        let mut rng = SimRng::new(0x5EED_2001 ^ case);
        let (start, sectors) = request(&mut rng);
        let head_warm = request(&mut rng);
        let now_ms = rng.below(100_000);

        let g = geometry();
        let mut disk = Disk::new(g, 0);
        // Position the head somewhere by serving one access first.
        let now = SimTime::from_ms(now_ms);
        let c0 = disk
            .submit(
                now,
                DiskRequest::new(0, head_warm.0, head_warm.1, IoKind::Read),
            )
            .unwrap();
        disk.complete(c0.at);
        let t0 = c0.at;
        let c1 = disk
            .submit(t0, DiskRequest::new(1, start, sectors, IoKind::Write))
            .unwrap();
        let service = (c1.at - t0).as_ms_f64();

        let sector_ms = g.sector_time_us() / 1_000.0;
        let min_transfer = sectors as f64 * sector_ms;
        assert!(
            service >= min_transfer - 0.01,
            "case {case}: service {service} below transfer floor {min_transfer}"
        );
        let crossings = (g.track_of(start + sectors as u64 - 1) - g.track_of(start)) as f64;
        let max = g.seek_max_ms
            + g.revolution_us as f64 / 1_000.0
            + min_transfer
            + crossings * g.track_skew_sectors as f64 * sector_ms
            + 0.01;
        assert!(
            service <= max,
            "case {case}: service {service} above ceiling {max}"
        );
    }
}

/// Completions from a busy disk are strictly ordered in time and every
/// submitted request completes exactly once, under every scheduler.
#[test]
fn every_request_completes_once() {
    let policies = [
        SchedPolicy::Fcfs,
        SchedPolicy::cvscan(),
        SchedPolicy::sstf(),
        SchedPolicy::scan(),
    ];
    for case in 0..128u64 {
        let mut rng = SimRng::new(0x5EED_2002 ^ case);
        let n = 1 + rng.below(39) as usize;
        let reqs: Vec<(u64, u32)> = (0..n).map(|_| request(&mut rng)).collect();
        let policy = policies[rng.below(policies.len() as u64) as usize];

        let g = geometry();
        let mut disk = Disk::with_policy(g, 0, policy);
        let mut next = None;
        for (i, &(start, sectors)) in reqs.iter().enumerate() {
            let r = DiskRequest::new(i as u64, start, sectors, IoKind::Read);
            if let Some(c) = disk.submit(SimTime::ZERO, r) {
                next = Some(c);
            }
        }
        let mut done = vec![false; reqs.len()];
        let mut last = SimTime::ZERO;
        let mut current = next.expect("first submit starts service");
        loop {
            assert!(
                current.at >= last,
                "case {case}: completions went backwards"
            );
            last = current.at;
            let (io, nxt) = disk.complete(current.at);
            let id = io.id;
            assert!(
                !done[id as usize],
                "case {case}: request {id} completed twice"
            );
            done[id as usize] = true;
            match nxt {
                Some(c) => current = c,
                None => break,
            }
        }
        assert!(
            done.iter().all(|&d| d),
            "case {case}: requests dropped: {done:?}"
        );
        assert_eq!(disk.stats().ios, reqs.len() as u64, "case {case}");
    }
}

/// The fitted seek curve is monotone and within spec for any scaled
/// geometry the experiments use.
#[test]
fn seek_fit_holds_for_scaled_disks() {
    for case in 0..128u64 {
        let mut rng = SimRng::new(0x5EED_2003 ^ case);
        let cylinders = 3 + rng.below(947) as u32;
        let g = Geometry::ibm0661_scaled(cylinders);
        let m = SeekModel::fit(&g);
        assert!(
            (m.seek_us(1) - g.seek_min_ms * 1000.0).abs() < 1e-6,
            "case {case}: cylinders {cylinders}"
        );
        assert!(
            (m.seek_us(cylinders - 1) - g.seek_max_ms * 1000.0).abs() < 1e-6,
            "case {case}: cylinders {cylinders}"
        );
        let mut prev = 0.0;
        let step = (cylinders / 97).max(1);
        let mut d = 0;
        while d < cylinders {
            let t = m.seek_us(d);
            assert!(t >= prev - 1e-9, "case {case}: seek decreased at {d}");
            prev = t;
            d += step;
        }
    }
}

/// Utilization never exceeds 1 and busy time never exceeds elapsed time.
#[test]
fn utilization_bounded() {
    for case in 0..128u64 {
        let mut rng = SimRng::new(0x5EED_2004 ^ case);
        let n = 1 + rng.below(29) as usize;
        let reqs: Vec<(u64, u32)> = (0..n).map(|_| request(&mut rng)).collect();

        let g = geometry();
        let mut disk = Disk::new(g, 0);
        let mut current = None;
        for (i, &(start, sectors)) in reqs.iter().enumerate() {
            let r = DiskRequest::new(i as u64, start, sectors, IoKind::Write);
            if let Some(c) = disk.submit(SimTime::ZERO, r) {
                current = Some(c);
            }
        }
        let mut last;
        let mut c = current.unwrap();
        loop {
            last = c.at;
            match disk.complete(c.at).1 {
                Some(nxt) => c = nxt,
                None => break,
            }
        }
        let util = disk.stats().utilization(last);
        assert!(util <= 1.0 + 1e-9, "case {case}: utilization {util}");
        // Back-to-back service with a non-empty queue: the disk never
        // idles, so utilization is exactly 1 up to rounding.
        assert!(
            util > 0.99,
            "case {case}: saturated disk underutilized: {util}"
        );
    }
}
