//! Property-based tests on the disk model: physical plausibility bounds
//! that must hold for every request the simulator can generate.

use decluster::disk::{Disk, DiskRequest, Geometry, IoKind, SchedPolicy, SeekModel};
use decluster::sim::SimTime;
use proptest::prelude::*;

fn geometry() -> Geometry {
    Geometry::ibm0661()
}

/// Strategy: a valid 4 KB-style request (1..=64 sectors) anywhere on disk.
fn request() -> impl Strategy<Value = (u64, u32)> {
    let g = geometry();
    let total = g.total_sectors();
    (0u64..total, 1u32..=64).prop_filter("fits on disk", move |(start, sectors)| {
        start + *sectors as u64 <= total
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Service time is bounded below by the pure transfer time and above
    /// by max seek + full rotation + transfer with every skew penalty.
    #[test]
    fn service_time_is_physically_bounded(
        (start, sectors) in request(),
        head_warm in request(),
        now_ms in 0u64..100_000,
    ) {
        let g = geometry();
        let mut disk = Disk::new(g, 0);
        // Position the head somewhere by serving one access first.
        let now = SimTime::from_ms(now_ms);
        let c0 = disk
            .submit(now, DiskRequest::new(0, head_warm.0, head_warm.1, IoKind::Read))
            .unwrap();
        disk.complete(c0.at);
        let t0 = c0.at;
        let c1 = disk
            .submit(t0, DiskRequest::new(1, start, sectors, IoKind::Write))
            .unwrap();
        let service = (c1.at - t0).as_ms_f64();

        let sector_ms = g.sector_time_us() / 1_000.0;
        let min_transfer = sectors as f64 * sector_ms;
        prop_assert!(
            service >= min_transfer - 0.01,
            "service {service} below transfer floor {min_transfer}"
        );
        let crossings = (g.track_of(start + sectors as u64 - 1) - g.track_of(start)) as f64;
        let max = g.seek_max_ms
            + g.revolution_us as f64 / 1_000.0
            + min_transfer
            + crossings * g.track_skew_sectors as f64 * sector_ms
            + 0.01;
        prop_assert!(service <= max, "service {service} above ceiling {max}");
    }

    /// Completions from a busy disk are strictly ordered in time and every
    /// submitted request completes exactly once, under every scheduler.
    #[test]
    fn every_request_completes_once(
        reqs in proptest::collection::vec(request(), 1..40),
        policy in prop_oneof![
            Just(SchedPolicy::Fcfs),
            Just(SchedPolicy::cvscan()),
            Just(SchedPolicy::sstf()),
            Just(SchedPolicy::scan()),
        ],
    ) {
        let g = geometry();
        let mut disk = Disk::with_policy(g, 0, policy);
        let mut next = None;
        for (i, &(start, sectors)) in reqs.iter().enumerate() {
            let r = DiskRequest::new(i as u64, start, sectors, IoKind::Read);
            if let Some(c) = disk.submit(SimTime::ZERO, r) {
                next = Some(c);
            }
        }
        let mut done = vec![false; reqs.len()];
        let mut last = SimTime::ZERO;
        let mut current = next.expect("first submit starts service");
        loop {
            prop_assert!(current.at >= last, "completions went backwards");
            last = current.at;
            let (id, nxt) = disk.complete(current.at);
            prop_assert!(!done[id as usize], "request {id} completed twice");
            done[id as usize] = true;
            match nxt {
                Some(c) => current = c,
                None => break,
            }
        }
        prop_assert!(done.iter().all(|&d| d), "requests dropped: {done:?}");
        prop_assert_eq!(disk.stats().ios, reqs.len() as u64);
    }

    /// The fitted seek curve is monotone and within spec for any scaled
    /// geometry the experiments use.
    #[test]
    fn seek_fit_holds_for_scaled_disks(cylinders in 3u32..=949) {
        let g = Geometry::ibm0661_scaled(cylinders);
        let m = SeekModel::fit(&g);
        prop_assert!((m.seek_us(1) - g.seek_min_ms * 1000.0).abs() < 1e-6);
        prop_assert!(
            (m.seek_us(cylinders - 1) - g.seek_max_ms * 1000.0).abs() < 1e-6
        );
        let mut prev = 0.0;
        let step = (cylinders / 97).max(1);
        let mut d = 0;
        while d < cylinders {
            let t = m.seek_us(d);
            prop_assert!(t >= prev - 1e-9, "seek decreased at {d}");
            prev = t;
            d += step;
        }
    }

    /// Utilization never exceeds 1 and busy time never exceeds elapsed
    /// time.
    #[test]
    fn utilization_bounded(reqs in proptest::collection::vec(request(), 1..30)) {
        let g = geometry();
        let mut disk = Disk::new(g, 0);
        let mut current = None;
        for (i, &(start, sectors)) in reqs.iter().enumerate() {
            let r = DiskRequest::new(i as u64, start, sectors, IoKind::Write);
            if let Some(c) = disk.submit(SimTime::ZERO, r) {
                current = Some(c);
            }
        }
        let mut last;
        let mut c = current.unwrap();
        loop {
            last = c.at;
            match disk.complete(c.at).1 {
                Some(n) => c = n,
                None => break,
            }
        }
        let util = disk.stats().utilization(last);
        prop_assert!(util <= 1.0 + 1e-9, "utilization {util}");
        // Back-to-back service with a non-empty queue: the disk never
        // idles, so utilization is exactly 1 up to rounding.
        prop_assert!(util > 0.99, "saturated disk underutilized: {util}");
    }
}
