//! End-to-end tests of the `decluster` command-line tool.

use std::process::Command;

fn decluster(args: &[&str]) -> (String, String, bool) {
    let output = Command::new(env!("CARGO_BIN_EXE_decluster"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.success(),
    )
}

#[test]
fn help_lists_all_commands() {
    let (out, _, ok) = decluster(&["help"]);
    assert!(ok);
    for cmd in ["designs", "layout", "check", "simulate"] {
        assert!(out.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn designs_finds_the_paper_design() {
    let (out, _, ok) = decluster(&["designs", "21", "5"]);
    assert!(ok);
    assert!(out.contains("b=21, v=21, k=5, r=5, lambda=1"), "{out}");
}

#[test]
fn designs_falls_back_to_closest_alpha() {
    // The paper's infeasible 41-disk G=5 example.
    let (out, _, ok) = decluster(&["designs", "41", "5"]);
    assert!(ok);
    assert!(out.contains("no direct design"), "{out}");
    assert!(out.contains("closest feasible"), "{out}");
}

#[test]
fn layout_check_and_vulnerability() {
    let (out, _, ok) = decluster(&["layout", "21", "4", "--check", "--vulnerability"]);
    assert!(ok);
    assert!(out.contains("alpha = 0.150"), "{out}");
    assert!(out.contains("criteria 1-3: hold"), "{out}");
    assert!(out.contains("210/210 pairs fatal"), "{out}");
}

#[test]
fn export_round_trips_through_check() {
    let (table, stderr, ok) = decluster(&["layout", "21", "4", "--export"]);
    assert!(ok);
    assert!(
        stderr.contains("layout bibd:c21g4: C = 21"),
        "summary on stderr: {stderr}"
    );
    assert!(table.starts_with("decluster-layout v1"), "clean stdout");
    let dir = std::env::temp_dir().join("decluster-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("g4.layout");
    std::fs::write(&path, &table).unwrap();
    let (out, _, ok) = decluster(&["check", path.to_str().unwrap()]);
    assert!(ok);
    assert!(out.contains("criteria 1-3: hold"), "{out}");
}

#[test]
fn layout_accepts_registry_specs() {
    // The PRIME generator needs no appendix table and passes criteria.
    let (out, _, ok) = decluster(&["layout", "prime:c11g4", "--check"]);
    assert!(ok, "{out}");
    assert!(out.contains("layout prime:c11g4: C = 11, G = 4"), "{out}");
    assert!(out.contains("criteria 1-3: hold"), "{out}");
}

#[test]
fn layout_check_exits_nonzero_on_violation() {
    // Chained mirroring violates criterion 2 by design, and --check is
    // a gate scripts rely on.
    let (out, err, ok) = decluster(&["layout", "chained:c8", "--check"]);
    assert!(!ok, "{out}");
    assert!(out.contains("criteria 1-3: VIOLATED"), "{out}");
    assert!(err.contains("layout criteria violated"), "{err}");
}

#[test]
fn check_rejects_garbage() {
    let dir = std::env::temp_dir().join("decluster-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage.layout");
    std::fs::write(&path, "not a layout\n").unwrap();
    let (_, err, ok) = decluster(&["check", path.to_str().unwrap()]);
    assert!(!ok);
    assert!(err.contains("bad magic"), "{err}");
}

#[test]
fn simulate_fault_free_and_rebuild() {
    let (out, _, ok) = decluster(&[
        "simulate",
        "--group",
        "4",
        "--cylinders",
        "30",
        "--seconds",
        "10",
        "--rate",
        "40",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("fault-free:"), "{out}");

    let (out, _, ok) = decluster(&[
        "simulate",
        "--group",
        "4",
        "--cylinders",
        "30",
        "--rate",
        "40",
        "--fail",
        "0",
        "--rebuild",
        "redirect",
        "--processes",
        "4",
    ]);
    assert!(ok, "{out}");
    assert!(out.contains("rebuilt disk 0 with redirect"), "{out}");
}

#[test]
fn unknown_command_fails_cleanly() {
    let (_, err, ok) = decluster(&["frobnicate"]);
    assert!(!ok);
    assert!(err.contains("unknown command"), "{err}");
}

#[test]
fn unknown_flag_fails_cleanly() {
    let (_, err, ok) = decluster(&["layout", "21", "4", "--bogus"]);
    assert!(!ok);
    assert!(err.contains("unknown flag"), "{err}");
}
