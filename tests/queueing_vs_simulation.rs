//! Cross-validation: the M/G/1 response-time model against the simulator.
//!
//! The model and the simulator share nothing but the drive's published
//! parameters, so agreement here is meaningful evidence both are right.
//! Tolerances are loose where the model's documented approximations
//! (FCFS vs CVSCAN, normal-order-statistic fan-outs) bite.

use decluster::analytic::queueing::{self, ServiceMoments};
use decluster::array::{ArrayConfig, ArraySim};
use decluster::experiments::paper_layout;
use decluster::sim::SimTime;
use decluster::workload::WorkloadSpec;

fn cfg() -> ArrayConfig {
    ArrayConfig::scaled(118)
}

fn moments() -> ServiceMoments {
    let (m1, m2) = cfg().geometry.random_service_moments_us(8);
    ServiceMoments::from_us(m1, m2)
}

fn simulate(g: u16, rate: f64, read_fraction: f64, degraded: bool) -> (f64, f64) {
    let mut sim = ArraySim::new(
        paper_layout(g).unwrap(),
        cfg(),
        WorkloadSpec::new(rate, read_fraction),
        1,
    )
    .expect("paper layouts fit");
    if degraded {
        sim.fail_disk(0).expect("disk is healthy and in range");
    }
    let report = sim.run_for(SimTime::from_secs(60), SimTime::from_secs(6));
    (report.ops.reads.mean_ms(), report.ops.writes.mean_ms())
}

fn assert_close(what: &str, model: f64, sim: f64, tolerance: f64) {
    let err = (model - sim).abs() / sim;
    assert!(
        err < tolerance,
        "{what}: model {model:.1} ms vs simulation {sim:.1} ms ({:.0}% off)",
        err * 100.0
    );
}

#[test]
fn fault_free_reads_match_within_10_percent() {
    for rate in [105.0, 210.0, 378.0] {
        let (sim_read, _) = simulate(4, rate, 1.0, false);
        let model = queueing::fault_free(21, 4, rate, 1.0, moments())
            .read_ms
            .expect("stable");
        assert_close(&format!("reads at {rate}/s"), model, sim_read, 0.10);
    }
}

#[test]
fn fault_free_writes_match_at_moderate_load() {
    // Writes stack two fan-out stages — the model's weakest approximation
    // — so hold it to 25% only at moderate utilization (ρ ≈ 0.43).
    let (_, sim_write) = simulate(4, 105.0, 0.0, false);
    let model = queueing::fault_free(21, 4, 105.0, 0.0, moments())
        .write_ms
        .expect("stable");
    assert_close("writes at 105/s", model, sim_write, 0.25);
}

#[test]
fn fcfs_model_is_pessimistic_under_heavy_write_load() {
    // At ρ ≈ 0.87 the FCFS Pollaczek–Khinchine wait dwarfs what the
    // simulator's CVSCAN queue actually delivers: the model must sit
    // clearly *above* the simulation, never below — the same
    // service-model blindness the paper diagnoses in Muntz & Lui, seen
    // from the other side.
    let (_, sim_write) = simulate(4, 210.0, 0.0, false);
    let model = queueing::fault_free(21, 4, 210.0, 0.0, moments())
        .write_ms
        .expect("stable");
    assert!(
        model > sim_write * 1.2,
        "expected FCFS pessimism: model {model:.1} vs CVSCAN simulation {sim_write:.1}"
    );
}

#[test]
fn degraded_reads_match_within_20_percent() {
    for (g, rate) in [(4u16, 210.0), (21, 210.0)] {
        let (sim_read, _) = simulate(g, rate, 1.0, true);
        let model = queueing::degraded(21, g, rate, 1.0, moments())
            .read_ms
            .expect("stable");
        assert_close(&format!("degraded reads G={g}"), model, sim_read, 0.20);
    }
}

#[test]
fn model_reproduces_figure_6_shapes() {
    // Without any simulation: fault-free reads flat in α, degraded reads
    // rising in α, degradation worse at higher rates.
    let m = moments();
    let ff4 = queueing::fault_free(21, 4, 210.0, 1.0, m).read_ms.unwrap();
    let ff21 = queueing::fault_free(21, 21, 210.0, 1.0, m).read_ms.unwrap();
    assert!((ff4 / ff21 - 1.0).abs() < 0.01, "fault-free not flat");
    let mut prev = 0.0;
    for g in [4u16, 10, 21] {
        let d = queueing::degraded(21, g, 210.0, 1.0, m).read_ms.unwrap();
        assert!(d > prev, "degraded reads not rising at G={g}");
        prev = d;
    }
    let low = queueing::degraded(21, 21, 105.0, 1.0, m).read_ms.unwrap();
    let high = queueing::degraded(21, 21, 378.0, 1.0, m).read_ms.unwrap();
    assert!(high > low * 1.2, "load sensitivity missing");
}

#[test]
fn model_flags_overload() {
    // 378 writes/s is the load the paper says the array cannot sustain;
    // the model should agree by reporting instability (or near-1 rho).
    let p = queueing::fault_free(21, 4, 378.0, 0.0, moments());
    assert!(
        p.write_ms.is_none() || p.utilization > 0.85,
        "model thinks 378 writes/s is comfortable: {p:?}"
    );
}
