//! End-to-end fault injection: scheduled second failures and media errors
//! driven through the full simulator, with lost-stripe sets checked
//! against the mapping and the pure loss assessment.
//!
//! The unit tests in `decluster-array` cover each mechanism in isolation;
//! these tests wire the whole stack together — paper layouts, the fault
//! plan, distributed sparing, and the media-error model — and pin the
//! exact data-loss accounting an operator would read out of a report.

use decluster::array::loss::assess_second_failure;
use decluster::array::spare::SpareMap;
use decluster::array::{ArrayConfig, ArraySim, FaultPlan, LossCause, ReconAlgorithm, ReconOptions};
use decluster::core::layout::ArrayMapping;
use decluster::disk::MediaFaultConfig;
use decluster::experiments::paper_layout;
use decluster::sim::SimTime;
use decluster::workload::WorkloadSpec;

fn cfg() -> ArrayConfig {
    ArrayConfig::scaled(30)
}

fn mapping_for(cfg: &ArrayConfig, g: u16) -> ArrayMapping {
    ArrayMapping::new(paper_layout(g).unwrap(), cfg.data_units_per_disk()).unwrap()
}

/// Stripe ids holding units on both disks, straight from the mapping.
fn sharing(m: &ArrayMapping, a: u16, b: u16) -> Vec<u64> {
    (0..m.stripes())
        .filter(|&s| {
            m.is_mapped(s) && {
                let units = m.stripe_units(s);
                units.iter().any(|u| u.disk == a) && units.iter().any(|u| u.disk == b)
            }
        })
        .collect()
}

/// A second failure with no rebuild running loses exactly the stripes
/// that straddle both dead disks — computable from the mapping alone.
#[test]
fn degraded_second_failure_loses_exactly_the_shared_stripes() {
    let cfg = cfg();
    let expected = sharing(&mapping_for(&cfg, 4), 0, 5);
    assert!(!expected.is_empty(), "test layout must share stripes");

    let mut sim = ArraySim::new(
        paper_layout(4).unwrap(),
        cfg,
        WorkloadSpec::half_and_half(40.0),
        3,
    )
    .unwrap();
    sim.fail_disk(0).unwrap();
    sim.inject_faults(&FaultPlan::new().fail_at(5, SimTime::from_secs(10)))
        .unwrap();
    let report = sim.run_for(SimTime::from_secs(30), SimTime::from_secs(2));

    assert_eq!(
        report.data_loss.second_failure,
        Some((5, SimTime::from_secs(10)))
    );
    assert_eq!(
        report.elapsed,
        SimTime::from_secs(10),
        "run ends at the fatal fault"
    );
    let ids: Vec<u64> = report.data_loss.stripes.iter().map(|l| l.stripe).collect();
    assert_eq!(ids, expected);
    for l in &report.data_loss.stripes {
        assert_eq!(l.cause, LossCause::SecondDiskFailure);
        assert_eq!(
            l.data_units + l.parity_units,
            2,
            "exactly two units straddle"
        );
    }
}

/// The further a rebuild has swept, the fewer stripes a second failure
/// takes — and the loss never exceeds the no-rebuild worst case.
#[test]
fn rebuild_progress_shrinks_the_lost_set() {
    let cfg = cfg();
    let worst = sharing(&mapping_for(&cfg, 4), 0, 7).len();
    let run_with_fault_at = |secs: f64| {
        let mut sim = ArraySim::new(
            paper_layout(4).unwrap(),
            cfg,
            WorkloadSpec::half_and_half(40.0),
            3,
        )
        .unwrap();
        sim.fail_disk(0).unwrap();
        sim.start_reconstruction(ReconOptions::new(ReconAlgorithm::Baseline).processes(4))
            .unwrap();
        sim.inject_faults(&FaultPlan::new().fail_at(7, SimTime::from_secs_f64(secs)))
            .unwrap();
        sim.run_until_reconstructed(SimTime::from_secs(10_000))
    };

    // Calibrate a clean rebuild, then inject early and late.
    let mut clean = ArraySim::new(
        paper_layout(4).unwrap(),
        cfg,
        WorkloadSpec::half_and_half(40.0),
        3,
    )
    .unwrap();
    clean.fail_disk(0).unwrap();
    clean
        .start_reconstruction(ReconOptions::new(ReconAlgorithm::Baseline).processes(4))
        .unwrap();
    let t = clean
        .run_until_reconstructed(SimTime::from_secs(10_000))
        .reconstruction_secs()
        .expect("clean rebuild completes");

    let early = run_with_fault_at(0.25 * t);
    let late = run_with_fault_at(0.75 * t);
    let (e, l) = (early.data_loss.stripes.len(), late.data_loss.stripes.len());
    assert!(e > 0, "an early second fault must lose data");
    assert!(
        l < e,
        "late fault ({l} stripes) must lose less than early ({e})"
    );
    assert!(
        e <= worst,
        "loss ({e}) cannot exceed the shared-stripe count ({worst})"
    );
    let fe = early.data_loss.rebuilt_fraction_before_loss().unwrap();
    let fl = late.data_loss.rebuilt_fraction_before_loss().unwrap();
    assert!(fe < fl, "rebuilt fractions must order with the fault times");
}

/// After a complete rebuild into distributed spares, a failure of a disk
/// *holding relocated spare units* still loses nothing: the placement
/// constraint keeps every stripe at one unit per disk.
#[test]
fn distributed_sparing_spare_disk_failure_after_rebuild_loses_nothing() {
    let cfg = ArrayConfig::builder()
        .cylinders(30)
        .distributed_spares(200)
        .build();
    let m = mapping_for(&cfg, 4);

    // Pick a second disk that actually received relocated units, so this
    // exercises the spare-disk case and not a bystander.
    let spares = SpareMap::build(&m, 0, 200).unwrap();
    let second = (0..m.units_per_disk())
        .find_map(|o| spares.spare_of(o))
        .expect("rebuild relocates at least one unit")
        .disk;

    let mut sim = ArraySim::new(
        paper_layout(4).unwrap(),
        cfg,
        WorkloadSpec::half_and_half(40.0),
        3,
    )
    .unwrap();
    sim.fail_disk(0).unwrap();
    sim.start_reconstruction(
        ReconOptions::new(ReconAlgorithm::Baseline)
            .processes(4)
            .distributed(),
    )
    .unwrap();
    // Far beyond any plausible rebuild time at this scale.
    sim.inject_faults(&FaultPlan::new().fail_at(second, SimTime::from_secs(5_000)))
        .unwrap();
    let report = sim.run_until_reconstructed(SimTime::from_secs(10_000));

    assert!(
        report.reconstruction_time.is_some(),
        "rebuild finishes first"
    );
    assert!(
        report.data_loss.is_empty(),
        "spare placement must survive the spare-holder's failure: {:?}",
        report.data_loss.stripes
    );
    assert_eq!(
        report.data_loss.second_failure,
        Some((second, SimTime::from_secs(5_000)))
    );
}

/// Mid-rebuild loss under distributed sparing stays within the pure
/// assessment's no-progress worst case, and every lost stripe is
/// explainable: it straddles the two dead disks, or one of its rebuilt
/// units was relocated onto the second dead disk.
#[test]
fn distributed_sparing_mid_rebuild_loss_matches_the_pure_assessment() {
    let cfg = ArrayConfig::builder()
        .cylinders(30)
        .distributed_spares(200)
        .build();
    let m = mapping_for(&cfg, 4);
    let spares = SpareMap::build(&m, 0, 200).unwrap();
    let second = 9u16;

    let worst: Vec<u64> = assess_second_failure(&m, Some(0), second, None, None)
        .iter()
        .map(|l| l.stripe)
        .collect();

    let mut sim = ArraySim::new(
        paper_layout(4).unwrap(),
        cfg,
        WorkloadSpec::half_and_half(40.0),
        3,
    )
    .unwrap();
    sim.fail_disk(0).unwrap();
    sim.start_reconstruction(
        ReconOptions::new(ReconAlgorithm::Baseline)
            .processes(4)
            .distributed(),
    )
    .unwrap();
    sim.inject_faults(&FaultPlan::new().fail_at(second, SimTime::from_secs(8)))
        .unwrap();
    let report = sim.run_until_reconstructed(SimTime::from_secs(10_000));

    assert!(
        !report.data_loss.is_empty(),
        "mid-rebuild fault must lose data"
    );
    for l in &report.data_loss.stripes {
        assert!(
            worst.contains(&l.stripe),
            "stripe {} lost but not in the no-progress worst case",
            l.stripe
        );
        let units = m.stripe_units(l.stripe);
        let explainable = units.iter().any(|u| u.disk == second)
            || units.iter().any(|u| {
                u.disk == 0 && spares.spare_of(u.offset).is_some_and(|s| s.disk == second)
            });
        assert!(
            explainable,
            "stripe {} lost for no modelled reason",
            l.stripe
        );
    }
}

/// The full fault stack — media errors plus a scheduled second failure —
/// is a pure function of configuration and seed.
#[test]
fn fault_plans_are_deterministic_end_to_end() {
    let run = || {
        let cfg = ArrayConfig::builder()
            .cylinders(30)
            .media_faults(
                MediaFaultConfig::none()
                    .with_latent_rate(1e-4)
                    .with_transient_rate(0.01)
                    .with_seed(11),
            )
            .build();
        let mut sim = ArraySim::new(
            paper_layout(4).unwrap(),
            cfg,
            WorkloadSpec::half_and_half(40.0),
            5,
        )
        .unwrap();
        sim.fail_disk(0).unwrap();
        sim.start_reconstruction(ReconOptions::new(ReconAlgorithm::Baseline).processes(2))
            .unwrap();
        sim.inject_faults(&FaultPlan::new().fail_at(3, SimTime::from_secs(12)))
            .unwrap();
        sim.run_until_reconstructed(SimTime::from_secs(10_000))
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    assert_eq!(
        a.data_loss.second_failure,
        Some((3, SimTime::from_secs(12)))
    );
}
