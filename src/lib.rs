//! # decluster
//!
//! A full reproduction of Mark Holland and Garth Gibson's *Parity
//! Declustering for Continuous Operation in Redundant Disk Arrays*
//! (ASPLOS 1992) as a Rust workspace: block-design-based parity layouts, a
//! disk-accurate array simulator, the paper's four reconstruction
//! algorithms, the Muntz & Lui analytic model, and a harness regenerating
//! every figure and table of the paper's evaluation.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`core`] (`decluster-core`) — block designs (including the paper's
//!   six appendix designs), declustered / RAID 5 / Reddy layouts, layout
//!   criteria validators;
//! * [`disk`] (`decluster-disk`) — the IBM 0661-class disk model with
//!   fitted seek curve, rotational positioning, and CVSCAN scheduling;
//! * [`sim`] (`decluster-sim`) — the deterministic event engine, RNG, and
//!   statistics;
//! * [`workload`] (`decluster-workload`) — the synthetic OLTP-style
//!   workload generator;
//! * [`mod@array`] (`decluster-array`) — the striping driver: fault-free,
//!   degraded, and reconstructing array simulation plus a byte-accurate
//!   data plane;
//! * [`analytic`] (`decluster-analytic`) — the Muntz & Lui fluid model;
//! * [`experiments`] (`decluster-experiments`) — runners for Figures 4-3,
//!   6-1, 6-2, 8-1 … 8-4, 8-6 and Table 8-1;
//! * [`store`] (`decluster-store`) — the file-backed declustered block
//!   store with degraded reads, online rebuild, and crash recovery;
//! * [`server`] (`decluster-server`) — the sessioned TCP block service
//!   over the store, with deadlines, admission control, and a
//!   fault-tolerant client.
//!
//! # Examples
//!
//! Build the paper's 21-disk array at α = 0.15, fail a disk, and rebuild
//! it with the redirect algorithm while serving user requests:
//!
//! ```no_run
//! use decluster::array::{ArrayConfig, ArraySim, ReconAlgorithm, ReconOptions};
//! use decluster::experiments::paper_layout;
//! use decluster::sim::SimTime;
//! use decluster::workload::WorkloadSpec;
//!
//! let mut sim = ArraySim::new(
//!     paper_layout(4)?,
//!     ArrayConfig::paper(),
//!     WorkloadSpec::half_and_half(105.0),
//!     1,
//! )?;
//! sim.fail_disk(0)?;
//! sim.start_reconstruction(ReconOptions::new(ReconAlgorithm::Redirect).processes(8))?;
//! let report = sim.run_until_reconstructed(SimTime::from_secs(100_000));
//! println!(
//!     "rebuilt in {:?}, user response {:.1} ms",
//!     report.reconstruction_time,
//!     report.ops.all.mean_ms()
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use decluster_analytic as analytic;
pub use decluster_array as array;
pub use decluster_core as core;
pub use decluster_disk as disk;
pub use decluster_experiments as experiments;
pub use decluster_server as server;
pub use decluster_sim as sim;
pub use decluster_store as store;
pub use decluster_workload as workload;
