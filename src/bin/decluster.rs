//! The `decluster` command-line tool: generate and check declustered
//! layouts, look up block designs, and run array simulations without
//! writing any Rust.
//!
//! ```text
//! decluster designs <disks> <group>          # find a block design
//! decluster layout <spec | disks group> [--export] [--check]
//! decluster check <layout-file>              # verify a decluster-layout v1 file
//! decluster simulate [options]               # run a scenario
//! decluster serve <store-dir> [options]      # run the TCP block service
//! ```
//!
//! Run `decluster help` (or any subcommand with `--help`) for details.

use decluster::analytic::reliability;
use decluster::array::{ArrayConfig, ArraySim, ReconAlgorithm, ReconOptions};
use decluster::core::design::catalog;
use decluster::core::layout::{
    criteria, tabular, vulnerability, LayoutSpec, ParityLayout, TabularLayout,
};
use decluster::sim::SimTime;
use decluster::workload::WorkloadSpec;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("designs") => cmd_designs(&args[1..]),
        Some("layout") => cmd_layout(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; try `decluster help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    println!(
        "decluster — parity declustering toolkit (Holland & Gibson, ASPLOS 1992)

USAGE:
  decluster designs <disks> <group>
      Find a block design for <disks> objects with tuples of <group>;
      falls back to the closest feasible stripe width, as the paper does.

  decluster layout <spec | disks group> [--export] [--check] [--vulnerability]
      Build a layout through the registry: either a full spec string
      (bibd:c21g5, prime:c11g4, rot:c12g5, raid5:c10, mirror:c10,
      chained:c10, reddy:c10, pq:c12g6) or the bare <disks> <group> pair
      (left-symmetric RAID 5 when <group> == <disks>, the design catalog
      otherwise). --export prints the portable decluster-layout v1 table;
      --check validates the paper's layout criteria 1-3 (nonzero exit
      on violation); --vulnerability reports double-failure exposure.

  decluster check <layout-file>
      Parse a decluster-layout v1 file and validate criteria 1-3.

  decluster simulate --disks <C> --group <G> [--rate R] [--reads F]
                     [--cylinders N] [--seconds S] [--seed S]
                     [--fail D [--rebuild ALG [--processes P]]]
      Run a scenario and print response-time / reconstruction results.
      ALG is one of: baseline, user-writes, redirect, piggyback.

  decluster serve <store-dir> [--addr HOST:PORT] [--workers N]
                  [--global-inflight N] [--session-inflight N]
      Serve an existing block store (see the `store` tool to mkfs one)
      over the sessioned TCP protocol until a client sends the
      SHUTDOWN RPC, then drain in-flight requests and close cleanly."
    );
}

fn parse<T: std::str::FromStr>(value: Option<&String>, what: &str) -> Result<T, String> {
    value
        .ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|_| format!("bad {what}: {:?}", value.expect("checked above")))
}

fn cmd_designs(args: &[String]) -> Result<(), String> {
    let v: u16 = parse(args.first(), "<disks>")?;
    let k: u16 = parse(args.get(1), "<group>")?;
    match catalog::find(v, k) {
        Ok(d) => {
            println!("found: {}", d.params());
            print!("{d}");
        }
        Err(e) => {
            println!("no direct design: {e}");
            let (d, g) = catalog::closest_group_size(v, k)
                .map_err(|e| format!("no feasible design at all: {e}"))?;
            println!(
                "closest feasible stripe width: G = {g} (alpha = {:.3})",
                d.params().alpha()
            );
            println!("{}", d.params());
        }
    }
    Ok(())
}

/// Maps the CLI's numeric `<disks> <group>` pair onto a registry spec:
/// `raid5:cN` when the stripe spans the whole array, `bibd:cNgM` below
/// it (the catalog behind `bibd` resolves appendix tables, the cyclic
/// library, finite geometries, and complete designs).
fn numeric_spec(disks: u16, group: u16) -> LayoutSpec {
    if group == disks {
        LayoutSpec::Raid5 { disks }
    } else {
        LayoutSpec::Bibd { disks, group }
    }
}

fn build_layout(disks: u16, group: u16) -> Result<Arc<dyn ParityLayout>, String> {
    numeric_spec(disks, group)
        .build()
        .map_err(|e| e.to_string())
}

fn report_criteria(layout: &dyn ParityLayout) -> Result<(), String> {
    let report = criteria::check(layout);
    println!(
        "criteria 1-3: {}",
        if report.all_hold() {
            "hold"
        } else {
            "VIOLATED"
        }
    );
    match &report.distributed_reconstruction {
        Ok(k) => println!("  pair constant (stripes shared per disk pair/table): {k}"),
        Err(e) => println!("  distributed reconstruction violated: {e}"),
    }
    match &report.distributed_parity {
        Ok(p) => println!("  parity units per disk per table: {p}"),
        Err(e) => println!("  distributed parity violated: {e}"),
    }
    println!(
        "  table height (criterion 4 metric): {}",
        report.table_height
    );
    // A violated criterion fails the command so scripts can gate on it
    // (chained mirroring violates criterion 2 by design; checking it
    // is expected to fail).
    if report.all_hold() {
        Ok(())
    } else {
        Err("layout criteria violated".to_string())
    }
}

fn cmd_layout(args: &[String]) -> Result<(), String> {
    // A first argument containing `:` is a full registry spec
    // (`prime:c11g4`, `pq:c12g6`, …); the bare `<disks> <group>` form
    // keeps the original CLI and resolves through the same registry.
    let (spec, rest) = match args.first() {
        Some(first) if first.contains(':') => {
            let spec: LayoutSpec = first
                .parse()
                .map_err(|e| format!("bad spec {first:?}: {e}"))?;
            (spec, &args[1..])
        }
        _ => {
            let disks: u16 = parse(args.first(), "<disks>")?;
            let group: u16 = parse(args.get(1), "<group>")?;
            (numeric_spec(disks, group), &args[2..])
        }
    };
    let flags: Vec<&str> = rest.iter().map(String::as_str).collect();
    for flag in &flags {
        if !["--export", "--check", "--vulnerability"].contains(flag) {
            return Err(format!("unknown flag {flag:?}"));
        }
    }
    let layout = spec.build().map_err(|e| e.to_string())?;
    let exporting = flags.contains(&"--export");
    let summary = format!(
        "layout {spec}: C = {}, G = {}, alpha = {:.3}, parity overhead {:.1}%, \
         table {} offsets x {} stripes",
        spec.disks(),
        spec.group(),
        layout.alpha(),
        layout.parity_overhead() * 100.0,
        layout.table_height(),
        layout.stripes_per_table()
    );
    // Keep stdout clean for the table when exporting.
    if exporting {
        eprintln!("{summary}");
    } else {
        println!("{summary}");
    }
    if flags.contains(&"--check") {
        report_criteria(layout.as_ref())?;
    }
    if flags.contains(&"--vulnerability") {
        let v = vulnerability::analyze(layout.as_ref());
        println!(
            "double-failure exposure: {}/{} pairs fatal ({:.0}%), worst loss {:.1}% of stripes",
            v.fatal_pairs,
            v.total_pairs,
            v.fatal_fraction() * 100.0,
            v.worst_loss_fraction * 100.0
        );
        let mttdl = reliability::mttdl_hours_fatal(v.fatal_pairs.max(1), 150_000.0, 1.0);
        println!(
            "MTTDL at 150,000 h MTBF, 1 h repair: {:.0} years",
            mttdl / (365.25 * 24.0)
        );
    }
    if exporting {
        print!("{}", tabular::export(layout.as_ref()));
    }
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing <layout-file>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let layout: TabularLayout = text.parse().map_err(|e| format!("parsing {path}: {e}"))?;
    println!(
        "parsed: C = {}, G = {}, {} stripes per table",
        layout.disks(),
        layout.stripe_width(),
        layout.stripes_per_table()
    );
    report_criteria(&layout)?;
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use decluster::server::{Server, ServerConfig};
    use decluster::store::BlockStore;

    let dir = args.first().ok_or("missing <store-dir>")?;
    let mut cfg = ServerConfig::default();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--workers" => cfg.workers = value("--workers")?.parse().map_err(|e| format!("{e}"))?,
            "--global-inflight" => {
                cfg.global_inflight = value("--global-inflight")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            "--session-inflight" => {
                cfg.session_inflight = value("--session-inflight")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let (store, recovery) = BlockStore::open(std::path::Path::new(dir))
        .map_err(|e| format!("opening store {dir}: {e}"))?;
    if let Some(r) = recovery {
        eprintln!(
            "recovery ({}): {} stripes checked, {} torn, {} repaired",
            r.policy.name(),
            r.stripes_checked,
            r.torn_found,
            r.torn_repaired
        );
    }
    let spec = store.spec();
    let server = Server::spawn(Arc::new(store), cfg).map_err(|e| format!("binding: {e}"))?;
    println!(
        "serving {} C={} G={} α={:.4} at {}  (send the SHUTDOWN RPC to stop)",
        spec,
        spec.disks(),
        spec.group(),
        spec.alpha(),
        server.addr()
    );
    server.wait_for_shutdown();
    println!("shutdown requested; draining");
    server.stop().map_err(|e| format!("stopping: {e}"))?;
    println!("stopped cleanly");
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let mut disks = 21u16;
    let mut group = 4u16;
    let mut rate = 105.0f64;
    let mut reads = 0.5f64;
    let mut cylinders = 118u32;
    let mut seconds = 40u64;
    let mut seed = 0x1992u64;
    let mut fail: Option<u16> = None;
    let mut rebuild: Option<ReconAlgorithm> = None;
    let mut processes = 8usize;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match flag.as_str() {
            "--disks" => disks = value("--disks")?.parse().map_err(|e| format!("{e}"))?,
            "--group" => group = value("--group")?.parse().map_err(|e| format!("{e}"))?,
            "--rate" => rate = value("--rate")?.parse().map_err(|e| format!("{e}"))?,
            "--reads" => reads = value("--reads")?.parse().map_err(|e| format!("{e}"))?,
            "--cylinders" => {
                cylinders = value("--cylinders")?.parse().map_err(|e| format!("{e}"))?
            }
            "--seconds" => seconds = value("--seconds")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--fail" => fail = Some(value("--fail")?.parse().map_err(|e| format!("{e}"))?),
            "--processes" => {
                processes = value("--processes")?.parse().map_err(|e| format!("{e}"))?
            }
            "--rebuild" => {
                rebuild = Some(match value("--rebuild")?.as_str() {
                    "baseline" => ReconAlgorithm::Baseline,
                    "user-writes" => ReconAlgorithm::UserWrites,
                    "redirect" => ReconAlgorithm::Redirect,
                    "piggyback" => ReconAlgorithm::RedirectPiggyback,
                    other => return Err(format!("unknown algorithm {other:?}")),
                })
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }

    let layout = build_layout(disks, group)?;
    let cfg = ArrayConfig::builder()
        .cylinders(cylinders)
        .seed(seed)
        .build();
    let spec = WorkloadSpec::new(rate, reads);
    let mut sim = ArraySim::new(layout, cfg, spec, 1).map_err(|e| e.to_string())?;
    println!(
        "simulating C={disks} G={group} at {rate}/s ({:.0}% reads), \
         {cylinders}-cylinder disks, seed {seed}",
        reads * 100.0
    );

    match (fail, rebuild) {
        (None, _) => {
            let r = sim.run_for(
                SimTime::from_secs(seconds),
                SimTime::from_secs(seconds / 10),
            );
            println!(
                "fault-free: {} requests, mean {:.1} ms, p90 {:.1} ms, disk utilization {:.0}%",
                r.requests_measured,
                r.ops.all.mean_ms(),
                r.ops.all.percentile_ms(0.9),
                r.mean_disk_utilization * 100.0
            );
        }
        (Some(disk), None) => {
            sim.fail_disk(disk).map_err(|e| e.to_string())?;
            let r = sim.run_for(
                SimTime::from_secs(seconds),
                SimTime::from_secs(seconds / 10),
            );
            println!(
                "degraded (disk {disk} dead): {} requests, mean {:.1} ms, p90 {:.1} ms",
                r.requests_measured,
                r.ops.all.mean_ms(),
                r.ops.all.percentile_ms(0.9)
            );
        }
        (Some(disk), Some(algorithm)) => {
            sim.fail_disk(disk).map_err(|e| e.to_string())?;
            sim.start_reconstruction(ReconOptions::new(algorithm).processes(processes))
                .map_err(|e| e.to_string())?;
            let r = sim.run_until_reconstructed(SimTime::from_secs(1_000_000));
            match r.reconstruction_secs() {
                Some(t) => println!(
                    "rebuilt disk {disk} with {algorithm} x{processes}: {t:.1} s \
                     ({} units swept, {} by users); user mean {:.1} ms, p90 {:.1} ms",
                    r.units_swept,
                    r.units_by_users,
                    r.ops.all.mean_ms(),
                    r.ops.all.percentile_ms(0.9)
                ),
                None => println!("reconstruction did not finish within the simulation cap"),
            }
        }
    }
    Ok(())
}
